use crate::netlist::{diode_iv, mos_iv, Circuit, Element, ElementHandle, MosType, NodeId};
use crate::MnaError;
use kato_linalg::{Lu, Matrix};

/// Options controlling the Newton–Raphson DC solve.
#[derive(Debug, Clone)]
pub struct DcOptions {
    /// Maximum Newton iterations per gmin level.
    pub max_iter: usize,
    /// Absolute node-voltage convergence tolerance, V.
    pub v_tol: f64,
    /// Maximum node-voltage update per iteration (damping), V.
    pub max_step: f64,
    /// KCL residual convergence tolerance, A. Newton also terminates when
    /// the residual falls below this — essential for stiff feedback loops
    /// whose near-singular Jacobian turns a machine-epsilon residual into
    /// noisy voltage updates.
    pub i_tol: f64,
    /// Final minimum conductance from every node to ground, S (SPICE GMIN).
    pub gmin: f64,
    /// Initial node-voltage guess (`None` → all zeros).
    pub initial: Option<Vec<f64>>,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions {
            max_iter: 150,
            v_tol: 1e-9,
            max_step: 0.3,
            i_tol: 1e-12,
            gmin: 1e-12,
            initial: None,
        }
    }
}

/// Result of a DC operating-point analysis.
#[derive(Debug, Clone)]
pub struct DcSolution {
    /// Node voltages indexed by raw node id (ground included as entry 0).
    voltages: Vec<f64>,
    /// Voltage-source branch currents, in voltage-source insertion order.
    branch_currents: Vec<f64>,
    /// Newton iterations used at the final gmin level.
    iterations: usize,
}

impl DcSolution {
    /// Voltage at `node`, V.
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.voltages[node.index()]
    }

    /// All node voltages (index 0 is ground).
    #[must_use]
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// Current through a voltage source (positive flowing from its `p`
    /// terminal through the source to `n`), or `None` if the handle is not a
    /// voltage source.
    #[must_use]
    pub fn branch_current(&self, circuit: &Circuit, source: ElementHandle) -> Option<f64> {
        circuit
            .branch_index(source)
            .map(|k| self.branch_currents[k])
    }

    /// Newton iterations used at the final gmin level.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

impl Circuit {
    /// Computes the DC operating point with default options.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::DcNoConvergence`] if Newton fails at every gmin
    /// level, or [`MnaError::SingularSystem`] for structurally singular
    /// circuits (floating nodes).
    pub fn dc(&self) -> Result<DcSolution, MnaError> {
        self.dc_with(&DcOptions::default())
    }

    /// Computes the DC operating point with explicit options.
    ///
    /// Uses gmin stepping: Newton is first run with a large conductance to
    /// ground on every node (an easy, almost-linear problem), then the
    /// conductance is reduced decade by decade down to `options.gmin`, warm
    /// starting each level from the previous solution.
    ///
    /// # Errors
    ///
    /// See [`Circuit::dc`].
    pub fn dc_with(&self, options: &DcOptions) -> Result<DcSolution, MnaError> {
        let n_nodes = self.node_count() - 1; // exclude ground
        let n_branch = self.branch_count();
        let dim = n_nodes + n_branch;
        if dim == 0 {
            return Ok(DcSolution {
                voltages: vec![0.0],
                branch_currents: Vec::new(),
                iterations: 0,
            });
        }

        let mut x = vec![0.0; dim];
        if let Some(init) = &options.initial {
            for (i, v) in init.iter().take(n_nodes + 1).enumerate() {
                if i > 0 {
                    x[i - 1] = *v;
                }
            }
        }

        if !self.is_nonlinear() {
            // One undamped Newton step solves a linear circuit exactly; the
            // second iteration certifies convergence.
            let (iters, x_final) = self.newton_loop(&mut x, options.gmin, 3, options, false)?;
            return Ok(self.pack_solution(x_final, n_nodes, iters));
        }

        // Warm-start fast path: with a supplied initial guess, try Newton at
        // the target gmin directly before resorting to stepping.
        if options.initial.is_some() {
            let mut x_fast = x.clone();
            if let Ok((iters, xf)) =
                self.newton_loop(&mut x_fast, options.gmin, options.max_iter, options, true)
            {
                return Ok(self.pack_solution(xf, n_nodes, iters));
            }
        }

        // gmin stepping: 1e-2 → options.gmin, decade steps.
        let mut gmin_levels = Vec::new();
        let mut g = 1e-2;
        while g > options.gmin * 1.001 {
            gmin_levels.push(g);
            g *= 0.1;
        }
        gmin_levels.push(options.gmin);

        let mut last_err = MnaError::DcNoConvergence {
            iterations: 0,
            residual: f64::INFINITY,
        };
        let mut converged_any = false;
        let mut iterations = 0;
        for &gmin in &gmin_levels {
            match self.newton_loop(&mut x, gmin, options.max_iter, options, true) {
                Ok((iters, xf)) => {
                    x = xf;
                    iterations = iters;
                    converged_any = true;
                }
                Err(e) => {
                    last_err = e;
                    converged_any = false;
                }
            }
        }
        if !converged_any {
            return Err(last_err);
        }
        Ok(self.pack_solution(x, n_nodes, iterations))
    }

    fn pack_solution(&self, x: Vec<f64>, n_nodes: usize, iterations: usize) -> DcSolution {
        let mut voltages = vec![0.0; n_nodes + 1];
        voltages[1..(n_nodes + 1)].copy_from_slice(&x[..n_nodes]);
        DcSolution {
            voltages,
            branch_currents: x[n_nodes..].to_vec(),
            iterations,
        }
    }

    /// Runs Newton iterations at one gmin level; returns (#iters, solution).
    fn newton_loop(
        &self,
        x0: &mut [f64],
        gmin: f64,
        max_iter: usize,
        options: &DcOptions,
        damp: bool,
    ) -> Result<(usize, Vec<f64>), MnaError> {
        let n_nodes = self.node_count() - 1;
        let dim = x0.len();
        let mut x = x0.to_vec();
        let mut residual_norm = f64::INFINITY;
        for iter in 0..max_iter {
            let (jac, f) = self.assemble(&x, gmin, n_nodes);
            residual_norm = f.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
            if iter > 0 && residual_norm < options.i_tol {
                x0.copy_from_slice(&x);
                return Ok((iter, x));
            }
            let lu = Lu::new(&jac).map_err(|e| match e {
                kato_linalg::LinalgError::Singular => MnaError::SingularSystem { freq_hz: 0.0 },
                other => MnaError::Linalg(other),
            })?;
            let neg_f: Vec<f64> = f.iter().map(|v| -v).collect();
            let mut dx = lu.solve(&neg_f);
            // Damping: cap the node-voltage update.
            let max_dv = dx[..n_nodes].iter().fold(0.0_f64, |m, v| m.max(v.abs()));
            if damp && max_dv > options.max_step {
                let scale = options.max_step / max_dv;
                for d in dx.iter_mut() {
                    *d *= scale;
                }
            }
            for i in 0..dim {
                x[i] += dx[i];
            }
            let conv = dx[..n_nodes].iter().all(|d| d.abs() < options.v_tol);
            if conv && iter > 0 {
                x0.copy_from_slice(&x);
                return Ok((iter + 1, x));
            }
        }
        Err(MnaError::DcNoConvergence {
            iterations: max_iter,
            residual: residual_norm,
        })
    }

    /// Assembles the Newton Jacobian and KCL residual at state `x`.
    fn assemble(&self, x: &[f64], gmin: f64, n_nodes: usize) -> (Matrix, Vec<f64>) {
        let dim = x.len();
        let mut jac = Matrix::zeros(dim, dim);
        let mut f = vec![0.0; dim];
        let temp = self.temperature();

        // Node voltage accessor: ground is fixed at 0 and excluded.
        let v = |node: NodeId| -> f64 {
            if node.is_ground() {
                0.0
            } else {
                x[node.index() - 1]
            }
        };
        // Row/column mapper: None for ground.
        let idx = |node: NodeId| -> Option<usize> {
            if node.is_ground() {
                None
            } else {
                Some(node.index() - 1)
            }
        };

        // gmin from every node to ground.
        for i in 0..n_nodes {
            jac[(i, i)] += gmin;
            f[i] += gmin * x[i];
        }

        let mut branch = n_nodes; // next branch row
        for e in self.elements() {
            match e {
                Element::Resistor { a, b, ohms, tc1 } => {
                    let r = ohms * (1.0 + tc1 * (temp - Circuit::TNOM));
                    let g = 1.0 / r.max(1e-3);
                    let ia = idx(*a);
                    let ib = idx(*b);
                    let i_elem = g * (v(*a) - v(*b));
                    if let Some(i) = ia {
                        f[i] += i_elem;
                        jac[(i, i)] += g;
                        if let Some(j) = ib {
                            jac[(i, j)] -= g;
                        }
                    }
                    if let Some(i) = ib {
                        f[i] -= i_elem;
                        jac[(i, i)] += g;
                        if let Some(j) = ia {
                            jac[(i, j)] -= g;
                        }
                    }
                }
                Element::Capacitor { .. } => { /* open at DC */ }
                Element::Vsource { p, n, dc, .. } => {
                    let br = branch;
                    branch += 1;
                    let ip = idx(*p);
                    let in_ = idx(*n);
                    // KCL contributions of the branch current.
                    if let Some(i) = ip {
                        f[i] += x[br];
                        jac[(i, br)] += 1.0;
                    }
                    if let Some(i) = in_ {
                        f[i] -= x[br];
                        jac[(i, br)] -= 1.0;
                    }
                    // Branch equation v_p − v_n = dc.
                    f[br] = v(*p) - v(*n) - dc;
                    if let Some(j) = ip {
                        jac[(br, j)] += 1.0;
                    }
                    if let Some(j) = in_ {
                        jac[(br, j)] -= 1.0;
                    }
                }
                Element::Isource { p, n, dc } => {
                    if let Some(i) = idx(*p) {
                        f[i] += dc;
                    }
                    if let Some(i) = idx(*n) {
                        f[i] -= dc;
                    }
                }
                Element::Vccs { p, n, cp, cn, gm } => {
                    let i_elem = gm * (v(*cp) - v(*cn));
                    for (out, sign) in [(idx(*p), 1.0), (idx(*n), -1.0)] {
                        if let Some(i) = out {
                            f[i] += sign * i_elem;
                            if let Some(j) = idx(*cp) {
                                jac[(i, j)] += sign * gm;
                            }
                            if let Some(j) = idx(*cn) {
                                jac[(i, j)] -= sign * gm;
                            }
                        }
                    }
                }
                Element::Diode { p, n, model } => {
                    let vd = v(*p) - v(*n);
                    let (id, gd) = diode_iv(model, vd, temp);
                    for (out, sign) in [(idx(*p), 1.0), (idx(*n), -1.0)] {
                        if let Some(i) = out {
                            f[i] += sign * id;
                            if let Some(j) = idx(*p) {
                                jac[(i, j)] += sign * gd;
                            }
                            if let Some(j) = idx(*n) {
                                jac[(i, j)] -= sign * gd;
                            }
                        }
                    }
                }
                Element::Mos {
                    d,
                    g,
                    s,
                    mos_type,
                    model,
                    w,
                    l,
                } => {
                    // Map to the device polarity frame.
                    let (vgs, vds) = match mos_type {
                        MosType::Nmos => (v(*g) - v(*s), v(*d) - v(*s)),
                        MosType::Pmos => (v(*s) - v(*g), v(*s) - v(*d)),
                    };
                    let (id, gm, gds) = mos_iv(model, *w, *l, vgs, vds, temp);
                    match mos_type {
                        MosType::Nmos => {
                            // Current id flows d→s inside the device.
                            for (node, sign) in [(idx(*d), 1.0), (idx(*s), -1.0)] {
                                if let Some(i) = node {
                                    f[i] += sign * id;
                                    if let Some(j) = idx(*g) {
                                        jac[(i, j)] += sign * gm;
                                    }
                                    if let Some(j) = idx(*d) {
                                        jac[(i, j)] += sign * gds;
                                    }
                                    if let Some(j) = idx(*s) {
                                        jac[(i, j)] += sign * (-gm - gds);
                                    }
                                }
                            }
                        }
                        MosType::Pmos => {
                            // Current id flows s→d inside the device.
                            for (node, sign) in [(idx(*s), 1.0), (idx(*d), -1.0)] {
                                if let Some(i) = node {
                                    f[i] += sign * id;
                                    if let Some(j) = idx(*s) {
                                        jac[(i, j)] += sign * (gm + gds);
                                    }
                                    if let Some(j) = idx(*g) {
                                        jac[(i, j)] -= sign * gm;
                                    }
                                    if let Some(j) = idx(*d) {
                                        jac[(i, j)] -= sign * gds;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        (jac, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::DiodeModel;

    #[test]
    fn voltage_divider() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.vsource(vin, Circuit::GND, 10.0);
        ckt.resistor(vin, mid, 1_000.0);
        ckt.resistor(mid, Circuit::GND, 3_000.0);
        let sol = ckt.dc().unwrap();
        assert!((sol.voltage(mid) - 7.5).abs() < 1e-6);
    }

    #[test]
    fn vsource_branch_current() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let vs = ckt.vsource(a, Circuit::GND, 5.0);
        ckt.resistor(a, Circuit::GND, 1_000.0);
        let sol = ckt.dc().unwrap();
        // 5 V across 1 kΩ → 5 mA drawn from the source. With the SPICE
        // convention the branch current (p→n through the source) is −5 mA.
        let i = sol.branch_current(&ckt, vs).unwrap();
        assert!((i + 5e-3).abs() < 1e-9, "i = {i}");
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        // 1 mA pulled from ground into node a (p=gnd: current leaves gnd).
        ckt.isource(Circuit::GND, a, 1e-3);
        ckt.resistor(a, Circuit::GND, 2_000.0);
        let sol = ckt.dc().unwrap();
        assert!((sol.voltage(a) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn vccs_amplifier() {
        // gm = 1 mS driving 10 kΩ: gain −10 for input 0.1 V.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.vsource(vin, Circuit::GND, 0.1);
        ckt.vccs(vout, Circuit::GND, vin, Circuit::GND, 1e-3);
        ckt.resistor(vout, Circuit::GND, 10_000.0);
        let sol = ckt.dc().unwrap();
        assert!((sol.voltage(vout) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn diode_forward_drop() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let d = ckt.node("d");
        ckt.vsource(a, Circuit::GND, 3.0);
        ckt.resistor(a, d, 10_000.0);
        ckt.diode(d, Circuit::GND, DiodeModel::silicon());
        let sol = ckt.dc().unwrap();
        let vd = sol.voltage(d);
        assert!(vd > 0.5 && vd < 0.8, "diode drop {vd}");
        // KCL: resistor current equals diode current.
        let ir = (3.0 - vd) / 10_000.0;
        let (idio, _) = diode_iv(&DiodeModel::silicon(), vd, 27.0);
        assert!((ir - idio).abs() / ir < 1e-6);
    }

    #[test]
    fn diode_stack_converges_from_zero() {
        // Two series diodes — a classic damping test.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let m = ckt.node("m");
        ckt.vsource(a, Circuit::GND, 2.0);
        ckt.resistor(a, m, 1_000.0);
        let k = ckt.node("k");
        ckt.diode(m, k, DiodeModel::silicon());
        ckt.diode(k, Circuit::GND, DiodeModel::silicon());
        let sol = ckt.dc().unwrap();
        assert!(sol.voltage(m) > 1.0 && sol.voltage(m) < 1.7);
    }

    #[test]
    fn nmos_common_source_bias() {
        use crate::netlist::{MosModel, MosType};
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("g");
        let drain = ckt.node("d");
        ckt.vsource(vdd, Circuit::GND, 1.8);
        ckt.vsource(gate, Circuit::GND, 0.9);
        ckt.resistor(vdd, drain, 10_000.0);
        ckt.mos(
            MosType::Nmos,
            drain,
            gate,
            Circuit::GND,
            MosModel::generic(),
            20e-6,
            1e-6,
        );
        let sol = ckt.dc().unwrap();
        let vd = sol.voltage(drain);
        // Device should pull the drain well below VDD but not to ground.
        assert!(vd > 0.05 && vd < 1.7, "drain voltage {vd}");
    }

    #[test]
    fn pmos_mirror_polarity() {
        use crate::netlist::{MosModel, MosType};
        // Diode-connected PMOS from VDD biased by a current sink: gate-source
        // voltage should settle near −(Vth + overdrive) relative to VDD.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let d = ckt.node("d");
        ckt.vsource(vdd, Circuit::GND, 1.8);
        ckt.mos(MosType::Pmos, d, d, vdd, MosModel::generic(), 20e-6, 1e-6);
        ckt.isource(d, Circuit::GND, 50e-6); // pull 50 µA down
        let sol = ckt.dc().unwrap();
        let vsg = 1.8 - sol.voltage(d);
        assert!(vsg > 0.4 && vsg < 1.4, "Vsg {vsg}");
    }

    #[test]
    fn empty_circuit_is_ok() {
        let ckt = Circuit::new();
        let sol = ckt.dc().unwrap();
        assert_eq!(sol.voltages(), &[0.0]);
    }

    #[test]
    fn floating_node_reports_singular_or_converges_via_gmin() {
        // A node connected only via a capacitor is floating at DC; gmin keeps
        // the matrix solvable and parks it at 0 V.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GND, 1.0);
        ckt.capacitor(a, b, 1e-12);
        let sol = ckt.dc().unwrap();
        assert!(sol.voltage(b).abs() < 1e-6);
    }

    #[test]
    fn temperature_affects_resistor() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.isource(Circuit::GND, a, 1e-3);
        ckt.resistor_tc(a, Circuit::GND, 1_000.0, 1e-3);
        let v27 = ckt.dc().unwrap().voltage(a);
        ckt.set_temperature(127.0);
        let v127 = ckt.dc().unwrap().voltage(a);
        assert!((v27 - 1.0).abs() < 1e-6);
        assert!((v127 - 1.1).abs() < 1e-6);
    }
}
