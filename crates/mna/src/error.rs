use std::error::Error;
use std::fmt;

use kato_linalg::LinalgError;

/// Errors produced by circuit construction and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MnaError {
    /// Newton iteration failed to converge even with gmin stepping.
    DcNoConvergence {
        /// Number of Newton iterations attempted at the final gmin level.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
    },
    /// The small-signal system was singular at some frequency (typically a
    /// floating node).
    SingularSystem {
        /// Frequency in Hz at which the solve failed (`0.0` for DC).
        freq_hz: f64,
    },
    /// A node id referenced an element that does not exist in this circuit.
    UnknownNode(usize),
    /// An element parameter was non-physical (negative resistance, zero
    /// width, ...).
    BadParameter {
        /// Description of the offending parameter.
        what: &'static str,
    },
    /// Underlying linear-algebra failure.
    Linalg(LinalgError),
}

impl fmt::Display for MnaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MnaError::DcNoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "dc analysis did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            MnaError::SingularSystem { freq_hz } => {
                write!(f, "singular MNA system at {freq_hz} Hz (floating node?)")
            }
            MnaError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            MnaError::BadParameter { what } => write!(f, "non-physical parameter: {what}"),
            MnaError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for MnaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MnaError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for MnaError {
    fn from(e: LinalgError) -> Self {
        MnaError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cause() {
        let e = MnaError::DcNoConvergence {
            iterations: 100,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("100"));
        let e = MnaError::from(LinalgError::Singular);
        assert!(e.to_string().contains("singular"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MnaError>();
    }
}
