use std::collections::HashMap;
use std::fmt;

/// Identifier of a circuit node. [`Circuit::GND`] (index 0) is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index (0 = ground).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// `true` for the ground node.
    #[must_use]
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// MOSFET polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosType {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Square-law/EKV MOSFET model card (per technology node).
///
/// The DC current uses the EKV charge-interpolation form, which is smooth
/// across weak/strong inversion and triode/saturation — essential for Newton
/// robustness:
///
/// `Id = 2·n·Vt²·KP·(W/L)·(ln²(1+e^{u_f}) − ln²(1+e^{u_r}))·(1+λ·Vds)`
///
/// with `u_f = (Vgs−Vth)/(2nVt)` and `u_r = u_f − Vds/(2Vt)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosModel {
    /// Transconductance parameter `KP = µ·Cox` in A/V².
    pub kp: f64,
    /// Zero-bias threshold voltage in V (positive for both polarities).
    pub vth: f64,
    /// Channel-length-modulation coefficient λ·L in V⁻¹·m — effective
    /// λ = `lambda_l / L`, capturing shorter channels having worse output
    /// resistance.
    pub lambda_l: f64,
    /// Subthreshold slope factor `n` (≈1.3–1.6).
    pub n_sub: f64,
    /// Gate-oxide capacitance per area, F/m² (used for Cgs/Cgd stamping).
    pub cox: f64,
    /// Threshold temperature coefficient, V/K (negative).
    pub vth_tc: f64,
}

impl MosModel {
    /// A generic long-channel model for tests (loosely 0.18 µm-class NMOS).
    #[must_use]
    pub fn generic() -> Self {
        MosModel {
            kp: 170e-6,
            vth: 0.5,
            lambda_l: 0.02e-6,
            n_sub: 1.4,
            cox: 8e-3,
            vth_tc: -1e-3,
        }
    }

    /// This card with a local (per-device) perturbation applied: `Vth`
    /// shifted by `dvth` volts and `KP` scaled by `kp_scale` — the form
    /// device mismatch takes in this model family. Because the I–V
    /// equations depend on `vgs` only through `vgs − vth` and are linear
    /// in `KP`, evaluating the perturbed card is equivalent to querying
    /// the nominal card at `vgs − dvth` and scaling currents by
    /// `kp_scale` (the remap the tech-card routing layer exploits).
    #[must_use]
    pub fn perturbed(&self, dvth: f64, kp_scale: f64) -> Self {
        MosModel {
            vth: self.vth + dvth,
            kp: self.kp * kp_scale,
            ..*self
        }
    }
}

/// Exponential-junction diode model (also used as a diode-connected BJT
/// stand-in inside the bandgap core).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeModel {
    /// Saturation current at `TNOM`, A.
    pub is_sat: f64,
    /// Ideality factor.
    pub n: f64,
    /// Junction multiplicity (parallel devices) — e.g. the `8×` leg of a
    /// bandgap PTAT pair.
    pub mult: f64,
    /// Saturation-current temperature exponent (SPICE `XTI`).
    pub xti: f64,
    /// Bandgap energy in eV (SPICE `EG`).
    pub eg: f64,
}

impl DiodeModel {
    /// Typical silicon junction at 1× area.
    #[must_use]
    pub fn silicon() -> Self {
        DiodeModel {
            is_sat: 1e-16,
            n: 1.0,
            mult: 1.0,
            xti: 3.0,
            eg: 1.11,
        }
    }

    /// Same model scaled to `mult` parallel junctions.
    #[must_use]
    pub fn with_mult(mut self, mult: f64) -> Self {
        self.mult = mult;
        self
    }
}

/// One circuit element. Constructed through the [`Circuit`] builder methods.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Element {
    /// Linear resistor with first-order temperature coefficient.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance at `TNOM`, Ω.
        ohms: f64,
        /// Linear temperature coefficient, 1/K.
        tc1: f64,
    },
    /// Linear capacitor (open at DC).
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance, F.
        farads: f64,
    },
    /// Independent voltage source (adds one MNA branch unknown).
    Vsource {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// DC value, V.
        dc: f64,
        /// AC magnitude used during small-signal sweeps.
        ac_mag: f64,
    },
    /// Independent current source; `dc` amps flow from `p` through the
    /// source to `n` (SPICE convention).
    Isource {
        /// Terminal current leaves.
        p: NodeId,
        /// Terminal current enters.
        n: NodeId,
        /// DC value, A.
        dc: f64,
    },
    /// Voltage-controlled current source: `gm·(v(cp)−v(cn))` flows from
    /// `p` through the source to `n`.
    Vccs {
        /// Output terminal current leaves.
        p: NodeId,
        /// Output terminal current enters.
        n: NodeId,
        /// Positive control terminal.
        cp: NodeId,
        /// Negative control terminal.
        cn: NodeId,
        /// Transconductance, S.
        gm: f64,
    },
    /// Junction diode, anode `p` → cathode `n`.
    Diode {
        /// Anode.
        p: NodeId,
        /// Cathode.
        n: NodeId,
        /// Model card.
        model: DiodeModel,
    },
    /// MOSFET (drain, gate, source; bulk tied to source).
    Mos {
        /// Drain.
        d: NodeId,
        /// Gate.
        g: NodeId,
        /// Source.
        s: NodeId,
        /// Polarity.
        mos_type: MosType,
        /// Model card.
        model: MosModel,
        /// Channel width, m.
        w: f64,
        /// Channel length, m.
        l: f64,
    },
}

/// Handle to an element inside a [`Circuit`], used to query branch currents
/// from a [`crate::DcSolution`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementId(pub(crate) usize);

/// An analog circuit netlist.
///
/// Nodes are created by name with [`Circuit::node`]; elements are appended
/// with the builder methods. See the crate-level docs for a full example.
#[derive(Debug, Clone)]
pub struct Circuit {
    names: Vec<String>,
    by_name: HashMap<String, NodeId>,
    elements: Vec<Element>,
    /// Simulation temperature, °C.
    temperature: f64,
}

impl Default for Circuit {
    fn default() -> Self {
        Self::new()
    }
}

impl Circuit {
    /// The ground node (always node 0).
    pub const GND: NodeId = NodeId(0);

    /// Nominal temperature for model cards, °C.
    pub const TNOM: f64 = 27.0;

    /// Creates an empty circuit at the nominal temperature (27 °C).
    #[must_use]
    pub fn new() -> Self {
        let mut by_name = HashMap::new();
        by_name.insert("0".to_string(), NodeId(0));
        Circuit {
            names: vec!["0".to_string()],
            by_name,
            elements: Vec::new(),
            temperature: Self::TNOM,
        }
    }

    /// Returns the node with this name, creating it if needed. The names
    /// `"0"` and `"gnd"` both resolve to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "gnd" || name == "0" {
            return Self::GND;
        }
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = NodeId(self.names.len());
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Number of nodes including ground.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Name of a node.
    #[must_use]
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.0]
    }

    /// All elements, in insertion order.
    #[must_use]
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Simulation temperature in °C.
    #[must_use]
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Sets the simulation temperature in °C (affects diodes, resistor tc1,
    /// MOS Vth).
    pub fn set_temperature(&mut self, celsius: f64) {
        self.temperature = celsius;
    }

    /// Thermal voltage `kT/q` at the current temperature, V.
    #[must_use]
    pub fn thermal_voltage(&self) -> f64 {
        const K_OVER_Q: f64 = 8.617_333_262e-5; // V/K
        K_OVER_Q * (self.temperature + 273.15)
    }

    fn push(&mut self, e: Element) -> ElementId {
        let id = ElementId(self.elements.len());
        self.elements.push(e);
        id
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not strictly positive (use a large resistor, not
    /// zero, to model opens).
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> ElementId {
        assert!(ohms > 0.0, "resistance must be positive, got {ohms}");
        self.push(Element::Resistor {
            a,
            b,
            ohms,
            tc1: 0.0,
        })
    }

    /// Adds a resistor with a linear temperature coefficient (1/K).
    pub fn resistor_tc(&mut self, a: NodeId, b: NodeId, ohms: f64, tc1: f64) -> ElementId {
        assert!(ohms > 0.0, "resistance must be positive, got {ohms}");
        self.push(Element::Resistor { a, b, ohms, tc1 })
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is negative.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> ElementId {
        assert!(farads >= 0.0, "capacitance must be non-negative");
        self.push(Element::Capacitor { a, b, farads })
    }

    /// Adds a DC voltage source with zero AC magnitude.
    pub fn vsource(&mut self, p: NodeId, n: NodeId, dc: f64) -> ElementId {
        self.push(Element::Vsource {
            p,
            n,
            dc,
            ac_mag: 0.0,
        })
    }

    /// Adds a voltage source with both DC value and AC magnitude (the AC
    /// stimulus for transfer-function sweeps).
    pub fn vsource_ac(&mut self, p: NodeId, n: NodeId, dc: f64, ac_mag: f64) -> ElementId {
        self.push(Element::Vsource { p, n, dc, ac_mag })
    }

    /// Adds a DC current source (`dc` flows from `p` through the source to
    /// `n`).
    pub fn isource(&mut self, p: NodeId, n: NodeId, dc: f64) -> ElementId {
        self.push(Element::Isource { p, n, dc })
    }

    /// Adds a voltage-controlled current source.
    pub fn vccs(&mut self, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gm: f64) -> ElementId {
        self.push(Element::Vccs { p, n, cp, cn, gm })
    }

    /// Adds a diode (anode `p`, cathode `n`).
    pub fn diode(&mut self, p: NodeId, n: NodeId, model: DiodeModel) -> ElementId {
        self.push(Element::Diode { p, n, model })
    }

    /// Adds a MOSFET.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `l` is not strictly positive.
    #[allow(clippy::too_many_arguments)]
    pub fn mos(
        &mut self,
        mos_type: MosType,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        model: MosModel,
        w: f64,
        l: f64,
    ) -> ElementId {
        assert!(w > 0.0 && l > 0.0, "MOS W and L must be positive");
        self.push(Element::Mos {
            d,
            g,
            s,
            mos_type,
            model,
            w,
            l,
        })
    }

    /// `true` if the circuit contains any nonlinear element (diode or MOS),
    /// i.e. a Newton DC solve is required before AC analysis.
    #[must_use]
    pub fn is_nonlinear(&self) -> bool {
        self.elements
            .iter()
            .any(|e| matches!(e, Element::Diode { .. } | Element::Mos { .. }))
    }

    /// Number of extra MNA branch unknowns (one per voltage source).
    #[must_use]
    pub(crate) fn branch_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::Vsource { .. }))
            .count()
    }

    /// Maps element index → branch index for voltage sources.
    pub(crate) fn branch_index(&self, elem: ElementId) -> Option<usize> {
        let mut k = 0;
        for (i, e) in self.elements.iter().enumerate() {
            if matches!(e, Element::Vsource { .. }) {
                if i == elem.0 {
                    return Some(k);
                }
                k += 1;
            }
        }
        None
    }
}

/// Public alias for [`ElementId`], used in the crate root's API surface.
pub use ElementId as ElementHandle;

/// Diode DC evaluation: current and conductance at junction voltage `vd`.
///
/// The exponential is linearised above `u = 40·nVt` to avoid overflow; Newton
/// damping keeps iterates out of that region at convergence.
pub(crate) fn diode_iv(model: &DiodeModel, vd: f64, temp_c: f64) -> (f64, f64) {
    const K_OVER_Q: f64 = 8.617_333_262e-5;
    let t = temp_c + 273.15;
    let tnom = Circuit::TNOM + 273.15;
    let vt = K_OVER_Q * t;
    let vt_n = model.n * vt;
    // SPICE-style saturation-current temperature scaling.
    let ratio = t / tnom;
    let is_t = model.is_sat
        * ratio.powf(model.xti / model.n)
        * ((ratio - 1.0) * model.eg / vt_n).exp()
        * model.mult;
    let u = vd / vt_n;
    const U_MAX: f64 = 40.0;
    if u > U_MAX {
        // Linear continuation of the exponential beyond u_max.
        let e = U_MAX.exp();
        let i = is_t * (e * (1.0 + (u - U_MAX)) - 1.0);
        let g = is_t * e / vt_n;
        (i, g)
    } else {
        let e = u.exp();
        let i = is_t * (e - 1.0);
        let g = (is_t * e / vt_n).max(1e-15);
        (i, g)
    }
}

/// MOSFET DC evaluation (EKV interpolation). Returns `(id, gm, gds)` where
/// `id` is the drain current for NMOS (source→drain magnitude for PMOS),
/// `gm = ∂Id/∂Vgs`, `gds = ∂Id/∂Vds` — all in the device's own polarity
/// frame (handled by the stamper).
pub(crate) fn mos_iv(
    model: &MosModel,
    w: f64,
    l: f64,
    vgs: f64,
    vds: f64,
    temp_c: f64,
) -> (f64, f64, f64) {
    const K_OVER_Q: f64 = 8.617_333_262e-5;
    let t = temp_c + 273.15;
    let vt = K_OVER_Q * t;
    let vth = model.vth + model.vth_tc * (temp_c - Circuit::TNOM);
    // Mobility degradation with temperature.
    let kp = model.kp * (t / (Circuit::TNOM + 273.15)).powf(-1.5);
    let n = model.n_sub;
    let lambda = model.lambda_l / l;
    let two_nvt = 2.0 * n * vt;

    // ln(1+e^u) with overflow-safe branches.
    let softplus = |u: f64| -> f64 {
        if u > 35.0 {
            u
        } else if u < -35.0 {
            0.0
        } else {
            u.exp().ln_1p()
        }
    };
    let sigmoid = |u: f64| -> f64 {
        if u > 35.0 {
            1.0
        } else if u < -35.0 {
            0.0
        } else {
            1.0 / (1.0 + (-u).exp())
        }
    };

    let uf = (vgs - vth) / two_nvt;
    let ur = uf - vds / (2.0 * vt);
    let gf = softplus(uf);
    let gr = softplus(ur);
    let i_f = gf * gf;
    let i_r = gr * gr;
    let c = 2.0 * n * vt * vt * kp * (w / l);
    let clm = 1.0 + lambda * vds.max(0.0);
    let id = c * (i_f - i_r) * clm;

    // Partials.
    let dif_duf = 2.0 * gf * sigmoid(uf);
    let dir_dur = 2.0 * gr * sigmoid(ur);
    let gm = c * (dif_duf - dir_dur) / two_nvt * clm;
    let mut gds = c * dir_dur / (2.0 * vt) * clm;
    if vds > 0.0 {
        gds += c * (i_f - i_r) * lambda;
    }
    (id, gm.max(0.0), gds.max(1e-12))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_interning_and_ground_aliases() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let a2 = ckt.node("a");
        assert_eq!(a, a2);
        assert_eq!(ckt.node("gnd"), Circuit::GND);
        assert_eq!(ckt.node("0"), Circuit::GND);
        assert_eq!(ckt.node_count(), 2);
        assert_eq!(ckt.node_name(a), "a");
        assert!(!a.is_ground());
        assert!(Circuit::GND.is_ground());
    }

    #[test]
    fn branch_bookkeeping() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.resistor(a, b, 1.0);
        let v1 = ckt.vsource(a, Circuit::GND, 1.0);
        let v2 = ckt.vsource(b, Circuit::GND, 2.0);
        assert_eq!(ckt.branch_count(), 2);
        assert_eq!(ckt.branch_index(v1), Some(0));
        assert_eq!(ckt.branch_index(v2), Some(1));
    }

    #[test]
    fn nonlinearity_detection() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor(a, Circuit::GND, 1.0);
        assert!(!ckt.is_nonlinear());
        ckt.diode(a, Circuit::GND, DiodeModel::silicon());
        assert!(ckt.is_nonlinear());
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn zero_resistance_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor(a, Circuit::GND, 0.0);
    }

    #[test]
    fn thermal_voltage_at_room_temp() {
        let ckt = Circuit::new();
        assert!((ckt.thermal_voltage() - 0.02585).abs() < 1e-4);
    }

    #[test]
    fn diode_iv_forward_behaviour() {
        let m = DiodeModel::silicon();
        let (i1, g1) = diode_iv(&m, 0.6, 27.0);
        let (i2, _) = diode_iv(&m, 0.66, 27.0);
        assert!(i1 > 0.0 && g1 > 0.0);
        // 60 mV/decade: current should rise ~10x.
        assert!(i2 / i1 > 8.0 && i2 / i1 < 13.0, "ratio {}", i2 / i1);
    }

    #[test]
    fn diode_iv_reverse_saturates() {
        let m = DiodeModel::silicon();
        let (i, g) = diode_iv(&m, -0.5, 27.0);
        assert!((i + m.is_sat).abs() < 1e-18);
        assert!(g > 0.0); // keeps Newton matrix nonsingular
    }

    #[test]
    fn diode_large_bias_does_not_overflow() {
        let m = DiodeModel::silicon();
        let (i, g) = diode_iv(&m, 5.0, 27.0);
        assert!(i.is_finite() && g.is_finite());
    }

    #[test]
    fn diode_vbe_decreases_with_temperature() {
        // Solve I = 1µA for VBE at two temperatures; expect ≈ −2 mV/K.
        let m = DiodeModel::silicon();
        let solve_vbe = |temp: f64| -> f64 {
            let mut v = 0.6;
            for _ in 0..200 {
                let (i, g) = diode_iv(&m, v, temp);
                v -= (i - 1e-6) / g;
            }
            v
        };
        let v27 = solve_vbe(27.0);
        let v87 = solve_vbe(87.0);
        let slope_mv_per_k = (v87 - v27) / 60.0 * 1e3;
        assert!(
            slope_mv_per_k < -1.0 && slope_mv_per_k > -3.0,
            "VBE slope {slope_mv_per_k} mV/K"
        );
    }

    #[test]
    fn mos_iv_square_law_region() {
        let m = MosModel::generic();
        // Strong inversion, saturation: Id ≈ KP/(2n)·(W/L)·(Vgs−Vth)².
        let (id, gm, gds) = mos_iv(&m, 10e-6, 1e-6, 1.2, 1.5, 27.0);
        let expect = m.kp / (2.0 * m.n_sub) * 10.0 * (1.2 - 0.5_f64).powi(2);
        assert!(
            (id - expect).abs() / expect < 0.15,
            "id {id:.3e} vs {expect:.3e}"
        );
        assert!(gm > 0.0 && gds > 0.0);
        // gm ≈ 2·Id/(Vgs−Vth) in square law.
        let gm_expect = 2.0 * id / 0.7;
        assert!((gm - gm_expect).abs() / gm_expect < 0.2, "gm {gm:.3e}");
    }

    #[test]
    fn mos_iv_cutoff_is_tiny() {
        let m = MosModel::generic();
        let (id, _, _) = mos_iv(&m, 10e-6, 1e-6, 0.0, 1.0, 27.0);
        assert!(id < 1e-9, "cutoff current {id:.3e}");
    }

    #[test]
    fn mos_iv_triode_scales_with_vds() {
        let m = MosModel::generic();
        let (i1, _, g1) = mos_iv(&m, 10e-6, 1e-6, 1.5, 0.05, 27.0);
        let (i2, _, _) = mos_iv(&m, 10e-6, 1e-6, 1.5, 0.10, 27.0);
        // Deep triode: current roughly proportional to Vds, high gds.
        assert!(i2 / i1 > 1.7 && i2 / i1 < 2.2, "ratio {}", i2 / i1);
        assert!(g1 > 1e-5);
    }

    #[test]
    fn mos_iv_channel_length_modulation() {
        let m = MosModel::generic();
        let (i1, _, _) = mos_iv(&m, 10e-6, 0.2e-6, 1.2, 0.8, 27.0);
        let (i2, _, _) = mos_iv(&m, 10e-6, 0.2e-6, 1.2, 1.6, 27.0);
        assert!(i2 > i1, "CLM should raise Id with Vds in saturation");
        // Longer channel → flatter curve.
        let (i3, _, _) = mos_iv(&m, 10e-6, 2e-6, 1.2, 0.8, 27.0);
        let (i4, _, _) = mos_iv(&m, 10e-6, 2e-6, 1.2, 1.6, 27.0);
        assert!((i4 / i3) < (i2 / i1));
    }

    #[test]
    fn mos_iv_zero_vds_zero_current() {
        let m = MosModel::generic();
        let (id, _, _) = mos_iv(&m, 10e-6, 1e-6, 1.2, 0.0, 27.0);
        assert!(id.abs() < 1e-12);
    }
}
