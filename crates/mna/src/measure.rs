//! Bode-plot measurements used by the sizing loop: unity-gain frequency,
//! phase margin and power-supply rejection.

use crate::BodeData;

/// Frequency (Hz) at which the magnitude crosses 0 dB, found by scanning the
/// sweep and interpolating in log-frequency. Returns `None` if the response
/// never crosses unity inside the swept range (e.g. the amplifier never
/// reaches 0 dB, or starts below it).
#[must_use]
pub fn unity_gain_freq(bode: &BodeData) -> Option<f64> {
    let mags = bode.mags_db();
    let freqs = bode.freqs();
    if mags[0] <= 0.0 {
        return None;
    }
    for i in 1..mags.len() {
        if mags[i] <= 0.0 {
            // Interpolate between i-1 and i in log-f.
            let m0 = mags[i - 1];
            let m1 = mags[i];
            let t = m0 / (m0 - m1);
            let lf = freqs[i - 1].ln() + t * (freqs[i].ln() - freqs[i - 1].ln());
            return Some(lf.exp());
        }
    }
    None
}

/// Phase margin in degrees: `180° + (∠H(f_unity) − ∠H(f_min))`.
///
/// The phase is referenced to the lowest swept frequency so the result is
/// insensitive to the stimulus polarity (an inverting path whose phase starts
/// at ±180° is handled identically to a non-inverting one). Returns `None`
/// when there is no unity-gain crossing in the sweep.
#[must_use]
pub fn phase_margin_deg(bode: &BodeData) -> Option<f64> {
    let fu = unity_gain_freq(bode)?;
    let phases = bode.phases_deg_unwrapped();
    let lag = crate::ac::interp_log_f(bode.freqs(), &phases, fu) - phases[0];
    Some(180.0 + lag)
}

/// Power-supply rejection ratio in dB at `f_hz`, from a Bode sweep whose
/// stimulus is a unit AC source on the supply and whose output is the
/// regulated/reference node: `PSRR = −|v_out/v_supply|` in dB, so larger is
/// better and 0 dB means the ripple passes straight through.
///
/// `f_hz` is clamped to the swept range by the underlying interpolation.
#[must_use]
pub fn psrr_db(bode: &BodeData, f_hz: f64) -> f64 {
    -bode.interpolate_mag_db(f_hz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AcSweep, Circuit};

    /// Single-pole integrator-like stage: A0 = 1000 (60 dB), fp = 1 kHz.
    /// Unity-gain at ≈ A0·fp = 1 MHz, phase margin ≈ 90°.
    fn single_pole_amp() -> (Circuit, crate::NodeId) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.vsource_ac(vin, Circuit::GND, 0.0, 1.0);
        ckt.vccs(Circuit::GND, vout, vin, Circuit::GND, 1e-3); // non-inverting
        ckt.resistor(vout, Circuit::GND, 1e6); // A0 = 1000
        let c = 1.0 / (2.0 * std::f64::consts::PI * 1e6 * 1e3); // fp = 1 kHz
        ckt.capacitor(vout, Circuit::GND, c);
        (ckt, vout)
    }

    #[test]
    fn unity_gain_of_single_pole_amp() {
        let (ckt, vout) = single_pole_amp();
        let bode = ckt
            .ac_transfer(vout, &AcSweep::log(10.0, 1e8, 241))
            .unwrap();
        let fu = unity_gain_freq(&bode).unwrap();
        assert!(
            (fu - 1e6).abs() / 1e6 < 0.02,
            "unity-gain frequency {fu:.3e}"
        );
    }

    #[test]
    fn phase_margin_of_single_pole_is_90() {
        let (ckt, vout) = single_pole_amp();
        let bode = ckt
            .ac_transfer(vout, &AcSweep::log(10.0, 1e8, 241))
            .unwrap();
        let pm = phase_margin_deg(&bode).unwrap();
        assert!((pm - 90.0).abs() < 2.0, "phase margin {pm}");
    }

    #[test]
    fn two_pole_amp_has_lower_margin() {
        let (mut ckt, _) = single_pole_amp();
        // Second pole at 1 MHz via an RC follower stage driven by vout.
        let vout = ckt.node("out");
        let v2 = ckt.node("out2");
        ckt.vccs(Circuit::GND, v2, vout, Circuit::GND, 1e-3);
        ckt.resistor(v2, Circuit::GND, 1e3); // unity buffer stage
        let c2 = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e6); // fp2 = 1 MHz
        ckt.capacitor(v2, Circuit::GND, c2);
        let bode = ckt.ac_transfer(v2, &AcSweep::log(10.0, 1e8, 241)).unwrap();
        let pm = phase_margin_deg(&bode).unwrap();
        // Second pole at the unity crossing: PM ≈ 45°.
        assert!(pm > 20.0 && pm < 60.0, "phase margin {pm}");
    }

    #[test]
    fn psrr_of_rc_supply_filter() {
        // Supply ripple through an RC low-pass (fc ≈ 159 Hz): at 10 Hz the
        // ripple passes (PSRR ≈ 0 dB), two decades above fc it is attenuated
        // ~40 dB.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        ckt.vsource_ac(vdd, Circuit::GND, 1.8, 1.0);
        ckt.resistor(vdd, out, 1e3);
        ckt.capacitor(out, Circuit::GND, 1e-6);
        let bode = ckt.ac_transfer(out, &AcSweep::log(1.0, 1e6, 121)).unwrap();
        assert!(psrr_db(&bode, 10.0).abs() < 1.0, "{}", psrr_db(&bode, 10.0));
        let hi = psrr_db(&bode, 15_915.0);
        assert!((hi - 40.0).abs() < 1.5, "psrr two decades up: {hi}");
    }

    #[test]
    fn no_crossing_returns_none() {
        // Flat 0.5x attenuator never crosses unity.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.vsource_ac(vin, Circuit::GND, 0.0, 1.0);
        ckt.resistor(vin, vout, 1e3);
        ckt.resistor(vout, Circuit::GND, 1e3);
        let bode = ckt.ac_transfer(vout, &AcSweep::log(1.0, 1e3, 31)).unwrap();
        assert!(unity_gain_freq(&bode).is_none());
        assert!(phase_margin_deg(&bode).is_none());
    }

    #[test]
    fn inverting_stimulus_gives_same_margin() {
        // Same single-pole amp but with the VCCS polarity flipped: the phase
        // starts at 180° instead of 0°, the margin must not change.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.vsource_ac(vin, Circuit::GND, 0.0, 1.0);
        ckt.vccs(vout, Circuit::GND, vin, Circuit::GND, 1e-3); // inverting
        ckt.resistor(vout, Circuit::GND, 1e6);
        let c = 1.0 / (2.0 * std::f64::consts::PI * 1e6 * 1e3);
        ckt.capacitor(vout, Circuit::GND, c);
        let bode = ckt
            .ac_transfer(vout, &AcSweep::log(10.0, 1e8, 241))
            .unwrap();
        let pm = phase_margin_deg(&bode).unwrap();
        assert!((pm - 90.0).abs() < 2.0, "phase margin {pm}");
    }
}
