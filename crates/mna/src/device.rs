//! Pluggable DC device-model backends: closed-form square law and gm/ID LUT.
//!
//! The sizing testbenches in `kato-circuits` compute stage operating points
//! from a handful of device-level queries: drain current / transconductance /
//! output conductance at a bias point, total gate capacitance, and the
//! inverse problem "what `vgs` carries a target `id`". [`DeviceModel`]
//! abstracts those queries so the physics behind them can be swapped:
//!
//! * [`SquareLaw`] evaluates the closed-form EKV interpolation model
//!   (`mos_iv`) directly — bitwise identical to the historical code path.
//! * [`DeviceLut`] is a gm/ID-style lookup table: dense `(L, vgs, vds)`
//!   grids of `(id, gm, gds)` (plus an `(L, vgs)` grid of `cgg`, which is
//!   `vds`-independent in this model), generated **from the closed-form
//!   model** on first use — deterministic and offline, no simulator in the
//!   loop — then trilinearly interpolated at evaluation time. The inverse
//!   query walks the monotone `vgs` axis of the grid instead of running a
//!   60-iteration bisection with two transcendental-heavy model calls per
//!   step, which is what makes population sweeps cheap.
//!
//! All stored values are per *reference width* [`DeviceLut::W_REF`]: in this
//! model `id`, `gm`, `gds` and `cgg` are exactly linear in `w`, so one grid
//! serves every width by scaling with `w / W_REF`.
//!
//! Tables are cached process-wide by [`lut_for`], keyed on the exact bit
//! patterns of the model parameters, temperature and length range — two
//! corners of the same tech node get distinct tables.

use crate::netlist::mos_iv;
use crate::{Circuit, MosModel};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// Boltzmann constant over elementary charge, V/K.
const K_OVER_Q: f64 = 8.617_333_262e-5;

/// Upper edge of the `vgs` search bracket / LUT axis, V. Matches the
/// historical bisection bracket in `TechNode::vgs_for_current_at`.
pub const VGS_MAX: f64 = 3.0;

/// Upper edge of the LUT `vds` axis, V (covers every supported supply).
const VDS_MAX: f64 = 2.0;

/// Gate-overlap capacitance per unit width, F/m. A fixed, bias-independent
/// fringe/overlap term so `cgg` never falls to the (unphysical) bare
/// depletion floor at `vgs = 0` — this is what gives MOS varactors a finite
/// C_min and makes the tuning ratio geometry-dependent.
const C_OV_PER_WIDTH: f64 = 0.3e-9;

/// Fraction of `W·L·Cox` still present in depletion (series gate–depletion
/// capacitance); the remaining `1 − CGG_DEPLETION_FRACTION` turns on with
/// inversion charge.
const CGG_DEPLETION_FRACTION: f64 = 0.35;

/// Total gate capacitance `Cgg` of a MOSFET at gate bias `vgs`, in F.
///
/// Smooth moderate-inversion interpolation consistent with the `mos_iv`
/// charge model: the intrinsic part transitions from
/// `CGG_DEPLETION_FRACTION·W·L·Cox` in depletion to the full `W·L·Cox`
/// in strong inversion through the same logistic the current model uses,
/// plus a bias-independent overlap term proportional to `w`. Monotone
/// non-decreasing in `vgs` and exactly linear in `w`.
#[must_use]
pub fn mos_cgg(model: &MosModel, w: f64, l: f64, vgs: f64, temp_c: f64) -> f64 {
    let t = temp_c + 273.15;
    let vt = K_OVER_Q * t;
    let vth = model.vth + model.vth_tc * (temp_c - Circuit::TNOM);
    let uf = (vgs - vth) / (2.0 * model.n_sub * vt);
    let sig = if uf > 35.0 {
        1.0
    } else if uf < -35.0 {
        0.0
    } else {
        1.0 / (1.0 + (-uf).exp())
    };
    let intrinsic =
        w * l * model.cox * (CGG_DEPLETION_FRACTION + (1.0 - CGG_DEPLETION_FRACTION) * sig);
    intrinsic + C_OV_PER_WIDTH * w
}

/// A target drain current that cannot be reached anywhere inside the `vgs`
/// search bracket `[0, VGS_MAX]` of an operating-point inversion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceError {
    /// `id_target` exceeds the current at the top of the bracket.
    TargetAboveRange {
        /// The requested drain current, A.
        id_target: f64,
        /// The maximum achievable drain current at `vgs = VGS_MAX`, A.
        id_max: f64,
    },
    /// `id_target` is below the leakage current at `vgs = 0`.
    TargetBelowRange {
        /// The requested drain current, A.
        id_target: f64,
        /// The minimum drain current at `vgs = 0`, A.
        id_min: f64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::TargetAboveRange { id_target, id_max } => write!(
                f,
                "id target {id_target:.3e} A unreachable: device carries at most {id_max:.3e} A \
                 at vgs = {VGS_MAX} V"
            ),
            DeviceError::TargetBelowRange { id_target, id_min } => write!(
                f,
                "id target {id_target:.3e} A unreachable: device leaks {id_min:.3e} A \
                 already at vgs = 0 V"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

/// One `(w, l, vgs, vds)` bias point for batched I–V evaluation.
pub type BiasPoint = (f64, f64, f64, f64);

/// One `(w, l, vds, id_target)` request for batched `vgs` inversion.
pub type VgsRequest = (f64, f64, f64, f64);

/// DC device-model backend: the queries a sizing testbench makes of a
/// MOSFET, abstracted over the physics that answers them.
///
/// A backend is constructed per `(model card, temperature)` pair — both are
/// baked in, so query signatures carry geometry and bias only. To add a
/// backend: implement this trait (the batch methods have loop defaults) and
/// give `kato_circuits::Backend` a variant routing to it.
pub trait DeviceModel: Send + Sync {
    /// Short stable backend name (`"square_law"`, `"lut"`).
    fn backend_name(&self) -> &'static str;

    /// `(id, gm, gds)` at bias `(vgs, vds)` for a `(w, l)` device.
    fn iv(&self, w: f64, l: f64, vgs: f64, vds: f64) -> (f64, f64, f64);

    /// Total gate capacitance at gate bias `vgs`, F.
    fn cgg(&self, w: f64, l: f64, vgs: f64) -> f64;

    /// The `vgs` at which the device carries `id_target` at drain bias
    /// `vds`, or a [`DeviceError`] when no `vgs` in `[0, VGS_MAX]` does.
    fn try_vgs_for_id(&self, w: f64, l: f64, vds: f64, id_target: f64) -> Result<f64, DeviceError>;

    /// Infallible [`DeviceModel::try_vgs_for_id`]: clamps to the bracket
    /// edge (`VGS_MAX` when the target is too high, `0.0` when it is below
    /// leakage) instead of erroring.
    fn vgs_for_id(&self, w: f64, l: f64, vds: f64, id_target: f64) -> f64 {
        match self.try_vgs_for_id(w, l, vds, id_target) {
            Ok(vgs) => vgs,
            Err(DeviceError::TargetAboveRange { .. }) => VGS_MAX,
            Err(DeviceError::TargetBelowRange { .. }) => 0.0,
        }
    }

    /// Batched [`DeviceModel::iv`] over a population of bias points.
    fn iv_batch(&self, points: &[BiasPoint]) -> Vec<(f64, f64, f64)> {
        points
            .iter()
            .map(|&(w, l, vgs, vds)| self.iv(w, l, vgs, vds))
            .collect()
    }

    /// Batched operating-point inversion: one clamped `vgs` per request.
    fn vgs_for_id_batch(&self, requests: &[VgsRequest]) -> Vec<f64> {
        requests
            .iter()
            .map(|&(w, l, vds, id)| self.vgs_for_id(w, l, vds, id))
            .collect()
    }
}

/// The closed-form EKV interpolation backend (`mos_iv` evaluated directly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquareLaw {
    /// Device model card.
    pub model: MosModel,
    /// Evaluation temperature, °C.
    pub temp_c: f64,
}

impl SquareLaw {
    /// A square-law backend for `model` at `temp_c` °C.
    #[must_use]
    pub fn new(model: MosModel, temp_c: f64) -> Self {
        SquareLaw { model, temp_c }
    }
}

impl DeviceModel for SquareLaw {
    fn backend_name(&self) -> &'static str {
        "square_law"
    }

    fn iv(&self, w: f64, l: f64, vgs: f64, vds: f64) -> (f64, f64, f64) {
        mos_iv(&self.model, w, l, vgs, vds, self.temp_c)
    }

    fn cgg(&self, w: f64, l: f64, vgs: f64) -> f64 {
        mos_cgg(&self.model, w, l, vgs, self.temp_c)
    }

    /// Bisection on `[0, VGS_MAX]`, 60 iterations — the loop is kept
    /// verbatim from the historical `TechNode::vgs_for_current_at` so a
    /// reachable target still resolves to the bitwise-identical `vgs`. The
    /// bracket is now checked first: an unreachable target reports a clean
    /// [`DeviceError`] instead of silently returning a bracket edge.
    fn try_vgs_for_id(&self, w: f64, l: f64, vds: f64, id_target: f64) -> Result<f64, DeviceError> {
        let (id_max, _, _) = self.iv(w, l, VGS_MAX, vds);
        if id_max < id_target {
            return Err(DeviceError::TargetAboveRange { id_target, id_max });
        }
        let (id_min, _, _) = self.iv(w, l, 0.0, vds);
        if id_min > id_target {
            return Err(DeviceError::TargetBelowRange { id_target, id_min });
        }
        let (mut lo, mut hi) = (0.0_f64, VGS_MAX);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            let (id, _, _) = self.iv(w, l, mid, vds);
            if id < id_target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }
}

/// One uniform LUT axis: `n` knots spanning `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Axis {
    min: f64,
    max: f64,
    n: usize,
}

impl Axis {
    fn new(min: f64, max: f64, n: usize) -> Self {
        debug_assert!(n >= 2 && max > min);
        Axis { min, max, n }
    }

    fn step(&self) -> f64 {
        (self.max - self.min) / (self.n - 1) as f64
    }

    /// Coordinate of knot `i` — the exact value the grid was sampled at.
    fn knot(&self, i: usize) -> f64 {
        self.min + self.step() * i as f64
    }

    /// Lower knot index and fractional offset for coordinate `x`, clamped
    /// to the axis range. The fraction is computed against the *knot*
    /// coordinates, so `x == knot(i)` yields an exact 0.0 (and the lerp
    /// form `(1−t)·a + t·b` then reproduces grid values bitwise).
    fn locate(&self, x: f64) -> (usize, f64) {
        let t = (x - self.min) / self.step();
        let i = (t.floor().max(0.0) as usize).min(self.n - 2);
        let (a, b) = (self.knot(i), self.knot(i + 1));
        let frac = ((x - a) / (b - a)).clamp(0.0, 1.0);
        (i, frac)
    }
}

/// Endpoint-exact linear interpolation: `t = 0` returns `a` bitwise,
/// `t = 1` returns `b` bitwise.
fn lerp(a: f64, b: f64, t: f64) -> f64 {
    (1.0 - t) * a + t * b
}

/// gm/ID lookup-table backend: dense grids over `(L, vgs, vds)` sampled
/// from the closed-form model at [`DeviceLut::W_REF`], trilinearly
/// interpolated and scaled by `w / W_REF` at query time.
#[derive(Clone)]
pub struct DeviceLut {
    model: MosModel,
    temp_c: f64,
    l_axis: Axis,
    vgs_axis: Axis,
    vds_axis: Axis,
    /// Flattened `(il, ivgs, ivds)` grid of `[id, gm, gds]` triples at
    /// `W_REF`, index `(il * n_vgs + ivgs) * n_vds + ivds`. Interleaved so
    /// one bias probe reads three adjacent values instead of touching
    /// three separate megabyte-scale arrays.
    ivg: Vec<[f64; 3]>,
    /// `cgg` is `vds`-independent in this model: one `(il, ivgs)` grid,
    /// index `il * n_vgs + ivgs`.
    cgg: Vec<f64>,
}

impl fmt::Debug for DeviceLut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceLut")
            .field("temp_c", &self.temp_c)
            .field("l_axis", &self.l_axis)
            .field("vgs_axis", &self.vgs_axis)
            .field("vds_axis", &self.vds_axis)
            .finish_non_exhaustive()
    }
}

impl DeviceLut {
    /// Reference width the grids are sampled at; queries scale by
    /// `w / W_REF` (exact — the model is linear in `w`).
    pub const W_REF: f64 = 1e-6;

    /// Knots along the device-length axis. The axis is linearly spaced but
    /// `id ∝ 1/L` (and `gds ∝ 1/L²`), so the short-channel end needs a fine
    /// pitch: 48 knots keeps the worst first-cell interpolation error of
    /// `1/L` under 1% across an 11× length range.
    pub const N_L: usize = 48;
    /// Knots along the `vgs` axis (`[0, VGS_MAX]`, dyadic 15.625 mV step —
    /// fine enough that piecewise-linear interpolation of the exponential
    /// near-threshold region stays within a few percent).
    pub const N_VGS: usize = 193;
    /// Knots along the `vds` axis (`[0, VDS_MAX]`, dyadic 62.5 mV step).
    pub const N_VDS: usize = 33;

    /// Builds the table for `model` at `temp_c` °C with the length axis
    /// spanning `[l_min, l_max]`. Deterministic: every stored value is one
    /// `mos_iv` / [`mos_cgg`] call at a knot, so builds are reproducible
    /// bit-for-bit and need no simulator or fitting step.
    #[must_use]
    pub fn build(model: &MosModel, temp_c: f64, l_min: f64, l_max: f64) -> Self {
        let l_axis = Axis::new(l_min, l_max, Self::N_L);
        let vgs_axis = Axis::new(0.0, VGS_MAX, Self::N_VGS);
        let vds_axis = Axis::new(0.0, VDS_MAX, Self::N_VDS);
        let n3 = Self::N_L * Self::N_VGS * Self::N_VDS;
        let mut ivg = Vec::with_capacity(n3);
        let mut cgg = Vec::with_capacity(Self::N_L * Self::N_VGS);
        for il in 0..Self::N_L {
            let l = l_axis.knot(il);
            for ivgs in 0..Self::N_VGS {
                let vgs = vgs_axis.knot(ivgs);
                cgg.push(mos_cgg(model, Self::W_REF, l, vgs, temp_c));
                for ivds in 0..Self::N_VDS {
                    let vds = vds_axis.knot(ivds);
                    let (i, g, go) = mos_iv(model, Self::W_REF, l, vgs, vds, temp_c);
                    ivg.push([i, g, go]);
                }
            }
        }
        DeviceLut {
            model: *model,
            temp_c,
            l_axis,
            vgs_axis,
            vds_axis,
            ivg,
            cgg,
        }
    }

    /// The model card this table was generated from.
    #[must_use]
    pub fn model(&self) -> &MosModel {
        &self.model
    }

    /// The temperature this table was generated at, °C.
    #[must_use]
    pub fn temp_c(&self) -> f64 {
        self.temp_c
    }

    fn at(&self, il: usize, ivgs: usize, ivds: usize) -> [f64; 3] {
        self.ivg[(il * Self::N_VGS + ivgs) * Self::N_VDS + ivds]
    }

    /// Per-reference-width drain current at `vgs` knot `k`, bilinearly
    /// interpolated in the (already located) `l` / `vds` coordinates.
    fn id_at_knot(&self, il: usize, tl: f64, iv: usize, tv: f64, k: usize) -> f64 {
        let corner = |dl: usize, dv: usize| self.at(il + dl, k, iv + dv)[0];
        let edge = |dv: usize| lerp(corner(0, dv), corner(1, dv), tl);
        lerp(edge(0), edge(1), tv)
    }
}

impl DeviceModel for DeviceLut {
    fn backend_name(&self) -> &'static str {
        "lut"
    }

    fn iv(&self, w: f64, l: f64, vgs: f64, vds: f64) -> (f64, f64, f64) {
        let (il, tl) = self.l_axis.locate(l);
        let (ig, tg) = self.vgs_axis.locate(vgs);
        let (iv, tv) = self.vds_axis.locate(vds);
        // One indexed load per cell corner (each corner's `[id, gm, gds]`
        // is adjacent in memory), then the endpoint-exact lerp chain per
        // component — bitwise identical to interpolating three grids.
        let c: [[[[f64; 3]; 2]; 2]; 2] = std::array::from_fn(|dl| {
            std::array::from_fn(|dg| std::array::from_fn(|dv| self.at(il + dl, ig + dg, iv + dv)))
        });
        let comp = |k: usize| {
            let edge = |dg: usize, dv: usize| lerp(c[0][dg][dv][k], c[1][dg][dv][k], tl);
            let face = |dv: usize| lerp(edge(0, dv), edge(1, dv), tg);
            lerp(face(0), face(1), tv)
        };
        let scale = w / Self::W_REF;
        let id = comp(0) * scale;
        let gm = comp(1) * scale;
        // Re-apply the model's conductance floor: stored values honour it
        // at W_REF, but scaling by w < W_REF could drop below it.
        let gds = (comp(2) * scale).max(1e-12);
        (id, gm, gds)
    }

    fn cgg(&self, w: f64, l: f64, vgs: f64) -> f64 {
        let (il, tl) = self.l_axis.locate(l);
        let (ig, tg) = self.vgs_axis.locate(vgs);
        let corner = |dl: usize, dg: usize| self.cgg[(il + dl) * Self::N_VGS + ig + dg];
        let edge = |dg: usize| lerp(corner(0, dg), corner(1, dg), tl);
        lerp(edge(0), edge(1), tg) * (w / Self::W_REF)
    }

    /// Grid inversion instead of bisection: at fixed `(l, vds)` the
    /// interpolated `id(vgs)` is piecewise-linear through the `vgs` knots
    /// and monotone (the generating model is monotone in `vgs`), so the
    /// inverse is a binary search over knots plus one exact linear solve —
    /// ~7 four-load probes instead of 60 transcendental model calls.
    fn try_vgs_for_id(&self, w: f64, l: f64, vds: f64, id_target: f64) -> Result<f64, DeviceError> {
        let (il, tl) = self.l_axis.locate(l);
        let (iv, tv) = self.vds_axis.locate(vds);
        let scale = w / Self::W_REF;
        let target = id_target / scale;
        let last = Self::N_VGS - 1;
        let id_max = self.id_at_knot(il, tl, iv, tv, last);
        if id_max < target {
            return Err(DeviceError::TargetAboveRange {
                id_target,
                id_max: id_max * scale,
            });
        }
        let id_min = self.id_at_knot(il, tl, iv, tv, 0);
        if id_min > target {
            return Err(DeviceError::TargetBelowRange {
                id_target,
                id_min: id_min * scale,
            });
        }
        // Smallest knot k with id(k) >= target (exists: id(last) >= target).
        let (mut lo, mut hi) = (0usize, last);
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.id_at_knot(il, tl, iv, tv, mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (a, b) = (
            self.id_at_knot(il, tl, iv, tv, lo),
            self.id_at_knot(il, tl, iv, tv, hi),
        );
        let t = if b > a {
            ((target - a) / (b - a)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        Ok(lerp(self.vgs_axis.knot(lo), self.vgs_axis.knot(hi), t))
    }
}

/// Process-wide [`DeviceLut`] cache keyed on the exact bit patterns of the
/// model card, temperature and length range. First call per key builds the
/// table (a few ms of closed-form sampling); later calls clone an `Arc`.
pub fn lut_for(model: &MosModel, temp_c: f64, l_min: f64, l_max: f64) -> Arc<DeviceLut> {
    type Key = [u64; 9];
    static CACHE: OnceLock<Mutex<HashMap<Key, Arc<DeviceLut>>>> = OnceLock::new();
    let key: Key = [
        model.kp.to_bits(),
        model.vth.to_bits(),
        model.lambda_l.to_bits(),
        model.n_sub.to_bits(),
        model.cox.to_bits(),
        model.vth_tc.to_bits(),
        temp_c.to_bits(),
        l_min.to_bits(),
        l_max.to_bits(),
    ];
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("device LUT cache poisoned").get(&key) {
        return Arc::clone(hit);
    }
    // Build outside the lock: a corner sweep's first batch may request
    // several distinct tables at once and builds are independent.
    let built = Arc::new(DeviceLut::build(model, temp_c, l_min, l_max));
    Arc::clone(
        cache
            .lock()
            .expect("device LUT cache poisoned")
            .entry(key)
            .or_insert(built),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const L_MIN: f64 = 0.18e-6;
    const L_MAX: f64 = 2.0e-6;
    const TEMP: f64 = 27.0;

    /// One shared table (process-wide cache) so 256 proptest cases pay for
    /// a single build.
    fn lut() -> Arc<DeviceLut> {
        lut_for(&MosModel::generic(), TEMP, L_MIN, L_MAX)
    }

    #[test]
    fn backends_report_stable_names() {
        let sq = SquareLaw::new(MosModel::generic(), TEMP);
        assert_eq!(sq.backend_name(), "square_law");
        assert_eq!(lut().backend_name(), "lut");
    }

    #[test]
    fn lut_cache_returns_the_same_table() {
        let a = lut();
        let b = lut();
        assert!(Arc::ptr_eq(&a, &b), "same key must hit the cache");
    }

    proptest! {
        /// At every grid knot the LUT reproduces the closed-form model
        /// bitwise for `w = W_REF`: `locate` yields an exact 0/1 fraction
        /// at knot coordinates, the lerp form is endpoint-exact, and the
        /// `w / W_REF` scale is exactly 1.0.
        #[test]
        fn prop_lut_is_bitwise_exact_at_grid_knots(
            il in 0usize..DeviceLut::N_L,
            ig in 0usize..DeviceLut::N_VGS,
            iv in 0usize..DeviceLut::N_VDS,
        ) {
            let lut = lut();
            let w = DeviceLut::W_REF;
            let l = lut.l_axis.knot(il);
            let vgs = lut.vgs_axis.knot(ig);
            let vds = lut.vds_axis.knot(iv);
            let exact = mos_iv(lut.model(), w, l, vgs, vds, lut.temp_c());
            prop_assert_eq!(lut.iv(w, l, vgs, vds), exact);
            prop_assert_eq!(
                lut.cgg(w, l, vgs),
                mos_cgg(lut.model(), w, l, vgs, lut.temp_c())
            );
        }

        /// Between knots the LUT tracks the closed form within the stated
        /// tolerance — `id`/`gm` to 5%, `gds` to 8%, `cgg` to 2% (each
        /// plus a tiny absolute floor for near-zero values) — for any
        /// width, any in-range length, and any saturated bias point:
        /// `vds ≥ 0.25 V` past the triode/saturation knee. The knee is
        /// excluded because `gds` there swings exponentially over ~2·Vt,
        /// narrower than the `vds` grid pitch; deep triode is excluded
        /// because its cells interpolate through `id = 0` and are only
        /// accurate in strong inversion (the switch Ron probe regime).
        #[test]
        fn prop_lut_tracks_closed_form_between_knots(
            w_um in 0.5..50.0f64,
            l in L_MIN..L_MAX,
            vgs in 0.0..VGS_MAX,
            vds in 0.25..VDS_MAX,
        ) {
            let lut = lut();
            let model = *lut.model();
            let vth_eff = model.vth + model.vth_tc * (TEMP - Circuit::TNOM);
            if model.n_sub * vds < (vgs - vth_eff) + 0.5 {
                // Knee or triode: outside the stated-accuracy region.
                continue;
            }
            let w = w_um * 1e-6;
            let (id, gm, gds) = lut.iv(w, l, vgs, vds);
            let reference = mos_iv(lut.model(), w, l, vgs, vds, lut.temp_c());
            let close = |got: f64, want: f64, rel: f64, abs: f64| {
                (got - want).abs() <= rel * want.abs() + abs
            };
            prop_assert!(close(id, reference.0, 0.05, 1e-9), "id {:e} vs {:e}", id, reference.0);
            prop_assert!(close(gm, reference.1, 0.05, 1e-9), "gm {:e} vs {:e}", gm, reference.1);
            prop_assert!(close(gds, reference.2, 0.08, 1e-9), "gds {:e} vs {:e}", gds, reference.2);
            let cgg = lut.cgg(w, l, vgs);
            let cgg_ref = mos_cgg(lut.model(), w, l, vgs, lut.temp_c());
            prop_assert!(close(cgg, cgg_ref, 0.02, 1e-18), "cgg {:e} vs {:e}", cgg, cgg_ref);
        }

        /// The stored `id` grid is monotone non-decreasing along the `vgs`
        /// axis at every `(l, vds)` knot pair — the invariant the LUT's
        /// binary-search inversion relies on.
        #[test]
        fn prop_lut_id_monotone_in_vgs_on_grid(
            il in 0usize..DeviceLut::N_L,
            iv in 0usize..DeviceLut::N_VDS,
        ) {
            let lut = lut();
            for ig in 1..DeviceLut::N_VGS {
                let lo = lut.at(il, ig - 1, iv)[0];
                let hi = lut.at(il, ig, iv)[0];
                prop_assert!(
                    hi >= lo,
                    "id not monotone at il={} iv={} ig={}: {:e} > {:e}",
                    il, iv, ig, lo, hi
                );
            }
        }

        /// Grid inversion is self-consistent: asking for the `vgs` that
        /// carries the current the LUT itself reports at a random bias
        /// lands back on that current to fp precision.
        #[test]
        fn prop_lut_vgs_inversion_roundtrip(
            w_um in 0.5..50.0f64,
            l in L_MIN..L_MAX,
            vgs in 0.1..VGS_MAX,
            vds in 0.05..VDS_MAX,
        ) {
            let lut = lut();
            let w = w_um * 1e-6;
            let (id, _, _) = lut.iv(w, l, vgs, vds);
            if id <= 1e-15 {
                // Degenerate leakage-floor currents are not worth inverting.
                continue;
            }
            let back = lut.try_vgs_for_id(w, l, vds, id);
            prop_assert!(back.is_ok(), "in-range target rejected: {:?}", back);
            let (id_back, _, _) = lut.iv(w, l, back.unwrap(), vds);
            prop_assert!(
                (id_back - id).abs() <= 1e-6 * id.abs(),
                "roundtrip {:e} vs {:e}", id_back, id
            );
        }
    }
}
