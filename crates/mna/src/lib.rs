#![warn(missing_docs)]

//! Modified-nodal-analysis (MNA) circuit simulator.
//!
//! The KATO paper evaluates candidate transistor sizings with a commercial
//! SPICE and foundry PDKs. Neither is available here, so this crate is the
//! from-scratch substitute: a compact analog simulator that provides exactly
//! the analyses the sizing loop observes:
//!
//! * **Nonlinear DC operating point** — Newton–Raphson with gmin stepping
//!   and voltage-update damping, over exponential diodes, square-law MOSFETs
//!   and linear elements.
//! * **Small-signal AC sweep** — complex-valued MNA solve `(G + jωC)·v = b`
//!   across a log frequency grid, producing Bode data for gain / GBW /
//!   phase-margin / PSRR extraction.
//! * **Temperature sweeps** — DC re-solves with temperature-dependent device
//!   models, used for bandgap temperature-coefficient measurement.
//!
//! The element set ([`Element`]) covers what the paper's three benchmark
//! circuits need: R, C, independent V/I sources, VCCS (for behavioural
//! small-signal macromodels), diodes (BJT diode-connected stand-ins) and
//! MOSFETs.
//!
//! # Example — RC low-pass corner frequency
//!
//! ```
//! use kato_mna::{Circuit, AcSweep};
//!
//! # fn main() -> Result<(), kato_mna::MnaError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.vsource_ac(vin, Circuit::GND, 0.0, 1.0);
//! ckt.resistor(vin, vout, 1_000.0);
//! ckt.capacitor(vout, Circuit::GND, 1e-6);
//! let sweep = AcSweep::log(10.0, 10_000.0, 61);
//! let bode = ckt.ac_transfer(vout, &sweep)?;
//! // f_c = 1/(2πRC) ≈ 159 Hz: response is −3 dB there.
//! let mag_at_fc = bode.interpolate_mag_db(159.15);
//! assert!((mag_at_fc + 3.01).abs() < 0.1);
//! # Ok(())
//! # }
//! ```

mod ac;
mod dc;
pub mod device;
mod error;
mod measure;
mod netlist;

pub use ac::{AcSweep, BodeData};
pub use dc::{DcOptions, DcSolution};
pub use device::{lut_for, mos_cgg, DeviceError, DeviceLut, DeviceModel, SquareLaw};
pub use error::MnaError;
pub use measure::{phase_margin_deg, psrr_db, unity_gain_freq};
pub use netlist::{Circuit, DiodeModel, Element, ElementHandle, MosModel, MosType, NodeId};

/// Evaluates the MOSFET DC model directly: returns `(Id, gm, gds)` for a
/// device of size `(w, l)` at bias `(vgs, vds)` and temperature `temp_c` °C.
///
/// Exposed for macromodel construction in `kato-circuits` (computing the
/// operating point of behavioural stages without a full Newton solve).
#[must_use]
pub fn mos_iv_public(
    model: &MosModel,
    w: f64,
    l: f64,
    vgs: f64,
    vds: f64,
    temp_c: f64,
) -> (f64, f64, f64) {
    netlist::mos_iv(model, w, l, vgs, vds, temp_c)
}

/// Evaluates the diode DC model directly: returns `(Id, gd)` at junction
/// voltage `vd` and temperature `temp_c` °C.
#[must_use]
pub fn diode_iv_public(model: &DiodeModel, vd: f64, temp_c: f64) -> (f64, f64) {
    netlist::diode_iv(model, vd, temp_c)
}
