//! Integration: circuit evaluation pipelines (MNA + device models +
//! measurements) behave like the analog circuits they model.

use kato_circuits::{
    random_design, Bandgap, SizingProblem, TechNode, ThreeStageOpAmp, TwoStageOpAmp,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_problems_evaluate_full_random_sweep_without_panic() {
    let problems: Vec<Box<dyn SizingProblem>> = vec![
        Box::new(TwoStageOpAmp::new(TechNode::n180())),
        Box::new(TwoStageOpAmp::new(TechNode::n40())),
        Box::new(ThreeStageOpAmp::new(TechNode::n180())),
        Box::new(ThreeStageOpAmp::new(TechNode::n40())),
        Box::new(Bandgap::new(TechNode::n180())),
    ];
    let mut rng = StdRng::seed_from_u64(77);
    for p in &problems {
        for _ in 0..40 {
            let x = random_design(p.dim(), &mut rng);
            let m = p.evaluate(&x);
            assert_eq!(m.values().len(), p.metric_names().len());
            assert!(
                m.values().iter().all(|v| v.is_finite()),
                "{}: non-finite metrics {m}",
                p.name()
            );
        }
    }
}

#[test]
fn feasible_designs_exist_but_are_rare() {
    // The paper reports ~2.3% random feasibility for the constrained setup;
    // our substitution targets the same order of magnitude (1%..30%).
    let p = TwoStageOpAmp::new(TechNode::n180());
    let mut rng = StdRng::seed_from_u64(5);
    let n = 400;
    let feasible = (0..n)
        .filter(|_| {
            let x = random_design(p.dim(), &mut rng);
            p.evaluate(&x).feasible(p.specs())
        })
        .count();
    let rate = feasible as f64 / n as f64;
    assert!(
        rate > 0.005 && rate < 0.3,
        "feasibility rate {rate} out of calibrated range"
    );
}

#[test]
fn expert_designs_beat_spec_on_every_problem() {
    let problems: Vec<Box<dyn SizingProblem>> = vec![
        Box::new(TwoStageOpAmp::new(TechNode::n180())),
        Box::new(TwoStageOpAmp::new(TechNode::n40())),
        Box::new(ThreeStageOpAmp::new(TechNode::n180())),
        Box::new(ThreeStageOpAmp::new(TechNode::n40())),
        Box::new(Bandgap::new(TechNode::n180())),
    ];
    for p in &problems {
        let m = p.evaluate(&p.expert_design());
        assert!(m.feasible(p.specs()), "{} expert infeasible: {m}", p.name());
    }
}

#[test]
fn cross_node_landscapes_are_correlated_but_shifted() {
    // The transfer premise: the same design evaluated on both nodes gives
    // correlated gains. Compute a rank-ish correlation over a small sample.
    let p180 = TwoStageOpAmp::new(TechNode::n180());
    let p40 = TwoStageOpAmp::new(TechNode::n40());
    let mut rng = StdRng::seed_from_u64(12);
    let mut pairs = Vec::new();
    for _ in 0..60 {
        let x = random_design(p180.dim(), &mut rng);
        let g180 = p180.evaluate(&x).get(1);
        let g40 = p40.evaluate(&x).get(1);
        pairs.push((g180, g40));
    }
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let cov: f64 = pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / n;
    let sx = (pairs.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>() / n).sqrt();
    let sy = (pairs.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>() / n).sqrt();
    let corr = cov / (sx * sy);
    assert!(corr > 0.4, "cross-node gain correlation too low: {corr}");
    // And shifted: 180 nm must deliver more gain on average.
    assert!(mx > my + 3.0, "180nm should out-gain 40nm: {mx} vs {my}");
}
