//! Integration: the full KATO pipeline (circuits -> simulator -> surrogates
//! -> acquisition -> optimizer) on the real two-stage op-amp.

use kato::baselines::RandomSearch;
use kato::{evaluate_batch_sharded, BoSettings, Kato, Mode};
use kato_circuits::{
    FomSpec, ScenarioRegistry, SizingProblem, TechNode, TwoStageOpAmp, YieldSettings,
};

#[test]
fn kato_constrained_beats_random_search_on_opamp2() {
    let problem = TwoStageOpAmp::new(TechNode::n180());
    let mut kato_best = Vec::new();
    let mut rs_best = Vec::new();
    for seed in [5u64, 17] {
        let mut s = BoSettings::quick(55, seed);
        s.n_init = 20;
        let kato = Kato::new(s.clone()).run(&problem, Mode::Constrained);
        let rs = RandomSearch::new(s).run(&problem, Mode::Constrained);
        assert_eq!(kato.len(), 55);
        assert_eq!(rs.len(), 55);
        kato_best.push(kato.incumbent());
        rs_best.push(rs.incumbent());
    }
    let kato_mean: f64 = kato_best.iter().sum::<f64>() / kato_best.len() as f64;
    let rs_mean: f64 = rs_best.iter().filter(|v| v.is_finite()).sum::<f64>()
        / rs_best.iter().filter(|v| v.is_finite()).count().max(1) as f64;
    assert!(
        kato_mean > rs_mean,
        "KATO ({kato_mean}) must beat RS ({rs_mean}) at equal budget"
    );
}

#[test]
fn kato_fom_mode_improves_monotonically_and_terminates() {
    let problem = TwoStageOpAmp::new(TechNode::n180());
    let fom = FomSpec::calibrate(&problem, 100, 3);
    let h = Kato::new(BoSettings::quick(40, 2)).run(&problem, Mode::Fom(fom));
    assert_eq!(h.len(), 40);
    let curve = h.best_curve();
    for w in curve.windows(2) {
        assert!(w[1] >= w[0], "best-so-far must be monotone");
    }
    assert!(curve[39] > curve[9], "BO phase must improve over init");
}

/// The early-abort contract: skipping mismatch samples that can no longer
/// change a candidate's feasibility classification must not change *any*
/// recorded number. Every registry scenario's yield estimates — and a full
/// seeded optimisation trajectory — must be bitwise-identical with the
/// abort schedule on and off.
#[test]
fn early_abort_never_changes_yield_estimates_or_trajectories() {
    let reg = ScenarioRegistry::standard();
    let settings = |abort: bool| YieldSettings {
        samples: 5,
        threshold: 0.6,
        seed: 31,
        early_abort: abort,
        corners: None,
    };
    for scenario in reg.scenarios() {
        let on = scenario
            .build_yield(scenario.default_tech, None, settings(true))
            .unwrap();
        let off = scenario
            .build_yield(scenario.default_tech, None, settings(false))
            .unwrap();
        let xs: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                (0..on.dim())
                    .map(|j| ((i * 29 + j * 13) % 97) as f64 / 97.0)
                    .collect()
            })
            .chain([on.expert_design()])
            .collect();
        let with_abort = evaluate_batch_sharded(&on, &xs);
        let without = evaluate_batch_sharded(&off, &xs);
        assert_eq!(
            with_abort, without,
            "{}: early abort changed a recorded yield evaluation",
            scenario.name
        );
    }

    // Full BO trajectory on the flagship scenario: identical histories.
    let opamp2 = reg.get("opamp2").unwrap();
    let on = opamp2
        .build_yield(opamp2.default_tech, None, settings(true))
        .unwrap();
    let off = opamp2
        .build_yield(opamp2.default_tech, None, settings(false))
        .unwrap();
    let mut s = BoSettings::quick(14, 31);
    s.n_init = 10;
    let h_on = Kato::new(s.clone()).run(&on, Mode::Constrained);
    let h_off = Kato::new(s).run(&off, Mode::Constrained);
    assert_eq!(h_on.len(), h_off.len());
    for (a, b) in h_on.evals.iter().zip(&h_off.evals) {
        assert_eq!(a.x, b.x, "proposal sequence diverged");
        assert_eq!(a.metrics, b.metrics, "recorded metrics diverged");
        assert_eq!(a.feasible, b.feasible);
        assert!(
            a.score == b.score || (a.score.is_nan() && b.score.is_nan()),
            "scores diverged: {} vs {}",
            a.score,
            b.score
        );
    }
}

#[test]
fn run_history_records_feasibility_consistently() {
    let problem = TwoStageOpAmp::new(TechNode::n180());
    let mut s = BoSettings::quick(30, 11);
    s.n_init = 15;
    let h = Kato::new(s).run(&problem, Mode::Constrained);
    for e in &h.evals {
        assert_eq!(e.feasible, e.metrics.feasible(problem.specs()));
        if e.feasible {
            assert!(e.score.is_finite());
        } else {
            assert_eq!(e.score, f64::NEG_INFINITY);
        }
    }
}
