//! Integration: the full KATO pipeline (circuits -> simulator -> surrogates
//! -> acquisition -> optimizer) on the real two-stage op-amp.

use kato::baselines::RandomSearch;
use kato::{BoSettings, Kato, Mode};
use kato_circuits::{FomSpec, SizingProblem, TechNode, TwoStageOpAmp};

#[test]
fn kato_constrained_beats_random_search_on_opamp2() {
    let problem = TwoStageOpAmp::new(TechNode::n180());
    let mut kato_best = Vec::new();
    let mut rs_best = Vec::new();
    for seed in [5u64, 17] {
        let mut s = BoSettings::quick(55, seed);
        s.n_init = 20;
        let kato = Kato::new(s.clone()).run(&problem, Mode::Constrained);
        let rs = RandomSearch::new(s).run(&problem, Mode::Constrained);
        assert_eq!(kato.len(), 55);
        assert_eq!(rs.len(), 55);
        kato_best.push(kato.incumbent());
        rs_best.push(rs.incumbent());
    }
    let kato_mean: f64 = kato_best.iter().sum::<f64>() / kato_best.len() as f64;
    let rs_mean: f64 = rs_best.iter().filter(|v| v.is_finite()).sum::<f64>()
        / rs_best.iter().filter(|v| v.is_finite()).count().max(1) as f64;
    assert!(
        kato_mean > rs_mean,
        "KATO ({kato_mean}) must beat RS ({rs_mean}) at equal budget"
    );
}

#[test]
fn kato_fom_mode_improves_monotonically_and_terminates() {
    let problem = TwoStageOpAmp::new(TechNode::n180());
    let fom = FomSpec::calibrate(&problem, 100, 3);
    let h = Kato::new(BoSettings::quick(40, 2)).run(&problem, Mode::Fom(fom));
    assert_eq!(h.len(), 40);
    let curve = h.best_curve();
    for w in curve.windows(2) {
        assert!(w[1] >= w[0], "best-so-far must be monotone");
    }
    assert!(curve[39] > curve[9], "BO phase must improve over init");
}

#[test]
fn run_history_records_feasibility_consistently() {
    let problem = TwoStageOpAmp::new(TechNode::n180());
    let mut s = BoSettings::quick(30, 11);
    s.n_init = 15;
    let h = Kato::new(s).run(&problem, Mode::Constrained);
    for e in &h.evals {
        assert_eq!(e.feasible, e.metrics.feasible(problem.specs()));
        if e.feasible {
            assert!(e.score.is_finite());
        } else {
            assert_eq!(e.score, f64::NEG_INFINITY);
        }
    }
}
