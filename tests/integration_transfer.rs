//! Integration: KAT-GP transfer across technology nodes and topologies on
//! the real circuit problems (paper SS4.3 scenarios, shrunk budgets).

use kato::{BoSettings, Kato, Mode, SourceData};
use kato_circuits::{SizingProblem, TechNode, ThreeStageOpAmp, TwoStageOpAmp};

fn quick(budget: usize, n_init: usize, seed: u64) -> BoSettings {
    let mut s = BoSettings::quick(budget, seed);
    s.n_init = n_init;
    s
}

#[test]
fn node_transfer_runs_and_stays_sane() {
    let source = TwoStageOpAmp::new(TechNode::n180());
    let target = TwoStageOpAmp::new(TechNode::n40());
    let src = SourceData::from_problem_random(&source, 60, 21);
    let h = Kato::new(quick(40, 20, 1))
        .with_source(src)
        .run(&target, Mode::Constrained);
    assert_eq!(h.len(), 40);
    // All evaluated designs remain in the unit cube of the *target* space.
    for e in &h.evals {
        assert_eq!(e.x.len(), target.dim());
        assert!(e.x.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}

#[test]
fn topology_transfer_bridges_different_dimensionalities() {
    // 9-D three-stage source -> 8-D two-stage target: the KAT encoder must
    // bridge the dimensionality gap (the paper's headline capability).
    let source = ThreeStageOpAmp::new(TechNode::n40());
    let target = TwoStageOpAmp::new(TechNode::n40());
    assert_ne!(source.dim(), target.dim());
    let src = SourceData::from_problem_random(&source, 60, 33);
    let h = Kato::new(quick(35, 18, 4))
        .with_source(src)
        .run(&target, Mode::Constrained);
    assert_eq!(h.len(), 35);
    assert!(h.method.contains("KATO+TL"));
}

#[test]
fn stl_weights_do_not_crash_with_useless_source() {
    // Degenerate source: constant metrics everywhere. STL should quietly
    // starve the transfer model rather than break the loop.
    let target = TwoStageOpAmp::new(TechNode::n40());
    let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0; 8]).collect();
    let columns = vec![vec![1.0; 30], vec![2.0; 30], vec![3.0; 30], vec![4.0; 30]];
    let src = SourceData {
        dim: 8,
        xs,
        columns,
        label: "constant".into(),
    };
    let h = Kato::new(quick(30, 15, 6))
        .with_source(src)
        .run(&target, Mode::Constrained);
    assert_eq!(h.len(), 30);
}
