//! Integration tests for the scenario registry and corner-aware
//! evaluation: every registered scenario must build on every registered
//! tech node and corner, evaluate to finite metrics, and run through the
//! full KATO loop.

use kato::{corner_audit, BoSettings, Kato, Mode, WorstCaseProblem};
use kato_circuits::{Corner, ScenarioRegistry, SizingProblem, YieldSettings};

#[test]
fn registry_lists_at_least_six_scenarios() {
    let reg = ScenarioRegistry::standard();
    assert!(reg.names().len() >= 6, "registry shrank: {:?}", reg.names());
}

#[test]
fn every_scenario_tech_corner_combination_builds_and_evaluates_finite() {
    let reg = ScenarioRegistry::standard();
    for scenario in reg.scenarios() {
        for tech in scenario.tech_names {
            for corner in &scenario.corners {
                let p = scenario.build(tech, corner).unwrap();
                let m = p.evaluate(&p.expert_design());
                assert!(
                    m.values().iter().all(|v| v.is_finite()),
                    "{} at {}: {m}",
                    p.name(),
                    corner.name()
                );
                let mid = p.evaluate(&vec![0.5; p.dim()]);
                assert!(
                    mid.values().iter().all(|v| v.is_finite()),
                    "{} midpoint at {}: {mid}",
                    p.name(),
                    corner.name()
                );
            }
        }
    }
}

#[test]
fn every_scenario_expert_design_is_feasible_at_nominal() {
    let reg = ScenarioRegistry::standard();
    for scenario in reg.scenarios() {
        let p = scenario.build_default();
        let m = p.evaluate(&p.expert_design());
        assert!(
            m.feasible(p.specs()),
            "{} expert must meet spec at TT: {m}",
            p.name()
        );
    }
}

#[test]
fn every_scenario_tech_combination_builds_and_evaluates_a_yield_problem() {
    let reg = ScenarioRegistry::standard();
    let samples = 4usize;
    for scenario in reg.scenarios() {
        for tech in scenario.tech_names {
            // TT-only so the baseline comparison below is apples-to-apples
            // with the scenario's nominal build.
            let p = scenario
                .build_yield(
                    tech,
                    None,
                    YieldSettings {
                        samples,
                        threshold: 0.5,
                        seed: 7,
                        corners: Some(vec![Corner::tt()]),
                        ..YieldSettings::default()
                    },
                )
                .unwrap_or_else(|e| panic!("{}@{tech}: {e}", scenario.name));
            let expert = p.expert_design();
            let m = p.evaluate(&expert);
            assert!(
                m.values().iter().all(|v| v.is_finite()),
                "{}: yield evaluation must stay finite: {m}",
                p.name()
            );
            // Sample 0 is the nominal evaluation, so a nominal-feasible
            // expert design scores at least 1/N yield at TT.
            let nominal = scenario.build(tech, &Corner::tt()).unwrap();
            if nominal.evaluate(&expert).feasible(nominal.specs()) {
                let y = m.get(p.yield_metric());
                assert!(
                    y >= 1.0 / samples as f64,
                    "{}: nominal-feasible expert scored yield {y}",
                    p.name()
                );
            }
        }
    }
}

#[test]
fn unknown_lookups_fail_with_descriptive_errors() {
    let reg = ScenarioRegistry::standard();
    let msg = reg.get("does_not_exist").unwrap_err().to_string();
    assert!(msg.contains("does_not_exist") && msg.contains("available"));
    let msg = reg
        .build("opamp2", Some("7nm"), None)
        .map(|p| p.name())
        .unwrap_err()
        .to_string();
    assert!(msg.contains("7nm"), "{msg}");
    let msg = reg
        .build("opamp2", None, Some("fs_12c"))
        .map(|p| p.name())
        .unwrap_err()
        .to_string();
    assert!(msg.contains("corner"), "{msg}");
}

#[test]
fn corner_audit_matches_single_corner_builds() {
    let reg = ScenarioRegistry::standard();
    let scenario = reg.get("folded_cascode").unwrap();
    let p = scenario.build_default();
    let x = p.expert_design();
    let audit = corner_audit(scenario, "180nm", &x).unwrap();
    assert_eq!(audit.len(), scenario.corners.len());
    for eval in &audit {
        let direct = scenario.build("180nm", &eval.corner).unwrap().evaluate(&x);
        assert_eq!(eval.metrics, direct, "audit must equal a direct build");
    }
}

#[test]
fn kato_runs_on_a_registry_built_problem() {
    // End-to-end: registry → problem → full KATO loop, small budget.
    let reg = ScenarioRegistry::standard();
    let p = reg.build("ldo", None, None).unwrap();
    let h = Kato::new(BoSettings::quick(18, 11)).run(p.as_ref(), Mode::Constrained);
    assert_eq!(h.len(), 18);
    assert!(h.evals.iter().all(|e| !e.score.is_nan()));
}

#[test]
fn worst_case_problem_runs_through_kato() {
    let reg = ScenarioRegistry::standard();
    let scenario = reg.get("opamp2").unwrap();
    let wc = WorstCaseProblem::new(scenario, "180nm").unwrap();
    let h = Kato::new(BoSettings::quick(14, 3)).run(&wc, Mode::Constrained);
    assert_eq!(h.len(), 14);
    // Worst-case scoring can only be harder than nominal: any design
    // feasible here must also be feasible on the nominal problem.
    let nominal = scenario.build("180nm", &Corner::tt()).unwrap();
    for e in h.evals.iter().filter(|e| e.feasible) {
        assert!(
            nominal.evaluate(&e.x).feasible(nominal.specs()),
            "worst-case feasible must imply nominal feasible"
        );
    }
}
