//! Fault-tolerance integration suite: the serving stack under injected
//! panics, corrupt bank files and request deadlines.
//!
//! Complements `integration_bank.rs` (the happy-path warm-start flow) by
//! driving the same stack through its failure modes: the deterministic
//! failpoints in `kato_serve::faults`, hand-corrupted archive files, and
//! adversarial request lines (property-fuzzed parsers).
//!
//! Tests that arm failpoints or run sizing jobs hold
//! `kato_serve::faults::test_lock()` so a failpoint armed by one test
//! never fires inside another running on a parallel test thread.

use kato_serve::daemon::run_with_bank;
use kato_serve::{faults, Bank, Daemon, Json, SizingRequest};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kato_faults_test_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// JSON-flavoured alphabet: random bytes mapped here reach much deeper
/// into the parser than raw bytes (which mostly die at the first token).
fn json_ish(bytes: &[u32]) -> String {
    const ALPHABET: &[u8] = br#"{}[]":,.0123456789eE+-truefalsenull \scenario"#;
    bytes
        .iter()
        .map(|&b| ALPHABET[b as usize % ALPHABET.len()] as char)
        .collect()
}

proptest! {
    #[test]
    fn json_parse_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u32..256, 0..120),
    ) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let text = String::from_utf8_lossy(&raw);
        // Ok or Err are both fine; a panic fails the test.
        let _ = Json::parse(&text);
        let _ = Json::parse(&json_ish(&bytes));
    }

    #[test]
    fn request_parse_rejects_garbage_cleanly(
        bytes in proptest::collection::vec(0u32..256, 0..120),
        cut in 0usize..200,
    ) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let _ = SizingRequest::parse(&String::from_utf8_lossy(&raw));
        let _ = SizingRequest::parse(&json_ish(&bytes));
        // Truncations of a valid request must error, never panic.
        let valid = r#"{"id":"j","scenario":"opamp2","tech":"40nm","specs":{"gain_db":55.0},"seed":9,"budget":20}"#;
        let cut = cut.min(valid.len());
        if cut < valid.len() {
            prop_assert!(SizingRequest::parse(&valid[..cut]).is_err());
        }
    }
}

#[test]
fn batch_with_a_panicking_job_isolates_the_failure() {
    let _guard = faults::test_lock();
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    // Seed 5 crashes every one of its simulator evaluations; 7 and 9 run
    // normally alongside it on the same pool.
    faults::arm("sim_panic=5");
    let mut daemon = Daemon::new();
    let lines = vec![
        r#"{"id":"crash","scenario":"opamp2","budget":8,"seed":5}"#.to_string(),
        r#"{"id":"fine-1","scenario":"opamp2","budget":8,"seed":7}"#.to_string(),
        r#"{"id":"fine-2","scenario":"opamp2","budget":8,"seed":9}"#.to_string(),
    ];
    let out = daemon.handle_batch(&lines);
    std::panic::set_hook(prev_hook);
    assert_eq!(out.len(), 3);

    let crash = Json::parse(&out[0]).unwrap();
    assert_eq!(crash.get("status").unwrap().as_str(), Some("error"));
    assert_eq!(crash.get("id").unwrap().as_str(), Some("crash"));
    let msg = crash.get("error").unwrap().as_str().unwrap();
    assert!(msg.contains("panicked"), "{msg}");

    for (line, id) in [(&out[1], "fine-1"), (&out[2], "fine-2")] {
        let doc = Json::parse(line).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"), "{line}");
        assert_eq!(doc.get("id").unwrap().as_str(), Some(id));
        assert_eq!(doc.get("n_evals").unwrap().as_f64(), Some(8.0));
    }
    assert!(faults::hits("sim_panic") >= 1);

    // The daemon is still serving: the crashed request succeeds once the
    // failpoint is disarmed, and health reflects the failure.
    faults::disarm_all();
    let retry = daemon.handle_line(r#"{"id":"retry","scenario":"opamp2","budget":8,"seed":5}"#);
    let doc = Json::parse(&retry).unwrap();
    assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
    let health = Json::parse(&daemon.handle_line(r#"{"op":"health"}"#)).unwrap();
    assert_eq!(health.get("jobs_failed").unwrap().as_f64(), Some(1.0));
    assert_eq!(health.get("jobs_served").unwrap().as_f64(), Some(3.0));
}

#[test]
fn corrupt_archive_still_warm_starts_and_shows_in_health() {
    let _guard = faults::test_lock();
    let dir = tmp_dir("quarantine");

    // Populate the bank with a real 180 nm archive through the daemon.
    {
        let bank = Bank::open(&dir).unwrap();
        let mut daemon = Daemon::new().with_bank(bank);
        let resp = daemon.handle_line(r#"{"id":"seed","scenario":"opamp2","budget":12,"seed":3}"#);
        assert_eq!(
            Json::parse(&resp).unwrap().get("status").unwrap().as_str(),
            Some("ok")
        );
    }
    // Plant a corrupt sibling archive, as a crashed writer would leave.
    fs::write(dir.join("opamp2__40nm.json"), "{\"version\":1,\"runs\":[tr").unwrap();

    // A fresh daemon over the damaged bank: open heals (quarantines the
    // torn file, keeps the good archive) instead of refusing.
    let bank = Bank::open(&dir).unwrap();
    assert_eq!(bank.quarantined_on_open(), 1);
    let mut daemon = Daemon::new().with_bank(bank);

    let health = Json::parse(&daemon.handle_line(r#"{"op":"health"}"#)).unwrap();
    let bank_doc = health.get("bank").unwrap();
    assert_eq!(bank_doc.get("attached").unwrap().as_bool(), Some(true));
    assert_eq!(bank_doc.get("entries").unwrap().as_f64(), Some(1.0));
    assert_eq!(bank_doc.get("quarantined").unwrap().as_f64(), Some(1.0));
    assert_eq!(
        bank_doc.get("quarantined_on_open").unwrap().as_f64(),
        Some(1.0)
    );

    // And the surviving archive still powers a cross-tech warm start.
    let resp = daemon
        .handle_line(r#"{"id":"warm","scenario":"opamp2","tech":"40nm","budget":12,"seed":4}"#);
    let doc = Json::parse(&resp).unwrap();
    assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
    let warm = doc.get("warm_start").unwrap();
    assert!(!warm.is_null(), "{resp}");
    assert_eq!(warm.get("source").unwrap().as_str(), Some("opamp2_180nm"));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_bank_write_failures_are_invisible_to_callers() {
    let _guard = faults::test_lock();
    let dir = tmp_dir("retry");
    // Two injected write failures are absorbed by the retry loop: the
    // append succeeds and the archive lands on disk intact.
    faults::arm("bank_write=2");
    {
        let bank = Bank::open(&dir).unwrap();
        let mut daemon = Daemon::new().with_bank(bank);
        let resp = daemon.handle_line(r#"{"id":"w","scenario":"opamp2","budget":8,"seed":6}"#);
        assert_eq!(
            Json::parse(&resp).unwrap().get("status").unwrap().as_str(),
            Some("ok")
        );
    }
    faults::disarm_all();
    let bank = Bank::open(&dir).unwrap();
    assert_eq!(bank.quarantined_on_open(), 0);
    assert_eq!(bank.total_runs(), 1);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn deadline_in_a_batch_degrades_only_its_own_job() {
    let _guard = faults::test_lock();
    let mut daemon = Daemon::new();
    let lines = vec![
        r#"{"id":"slow","scenario":"opamp2","budget":30,"seed":21,"deadline_ms":1}"#.to_string(),
        r#"{"id":"full","scenario":"opamp2","budget":8,"seed":22}"#.to_string(),
    ];
    let out = daemon.handle_batch(&lines);
    let slow = Json::parse(&out[0]).unwrap();
    assert_eq!(slow.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(slow.get("degraded").unwrap().as_bool(), Some(true));
    assert!(slow.get("n_evals").unwrap().as_f64().unwrap() < 30.0);
    let full = Json::parse(&out[1]).unwrap();
    assert_eq!(full.get("degraded").unwrap().as_bool(), Some(false));
    assert_eq!(full.get("n_evals").unwrap().as_f64(), Some(8.0));
    // Only the full run was cached; the degraded trace was discarded.
    assert_eq!(daemon.cache().len(), 1);
}

#[test]
fn run_with_bank_honours_a_preset_cancel_flag() {
    let _guard = faults::test_lock();
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    let registry = kato_circuits::ScenarioRegistry::standard();
    let req = SizingRequest::parse(r#"{"scenario":"opamp2","budget":10,"seed":2}"#).unwrap();
    let (problem, tech) = req.build_problem(&registry).unwrap();
    let flag = Arc::new(AtomicBool::new(true));
    let budget = kato::RunBudget::unlimited().with_cancel(flag);
    let settings = kato_serve::daemon::request_settings(req.budget, req.seed);
    let (history, warm) = run_with_bank(None, "opamp2", &tech, &*problem, settings, Some(budget));
    assert_eq!(history.len(), 0);
    assert!(warm.is_none());
}
