//! Integration: the knowledge bank end to end — lossless archive
//! persistence (property-tested) and the headline serving behaviour: a
//! completed `opamp2@180nm` run persisted to the bank warm-starts an
//! `opamp2@40nm` request and reaches feasibility in strictly fewer
//! simulator evaluations than the identical cold-start run.

use kato::{EvalRecord, Mode, RunHistory};
use kato_circuits::{Metrics, SizingProblem, TechNode, TwoStageOpAmp};
use kato_serve::archive::{history_from_json, history_to_json};
use kato_serve::daemon::{request_settings, run_with_bank};
use kato_serve::protocol::sims_to_feasible;
use kato_serve::{Bank, Daemon, Json};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

fn tmp_bank_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kato_it_bank_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// f64 equality where NaN == NaN (bitwise intent: the roundtrip must not
/// turn NaN into anything else, or vice versa).
fn same_num(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || a == b
}

proptest! {
    #[test]
    fn prop_history_roundtrips_losslessly_through_the_archive(
        raw in proptest::collection::vec(-1e6..1e6f64, 48),
        picks in proptest::collection::vec(0..20usize, 16),
        seed in 0..1_000_000u64,
    ) {
        // Assemble a 8-eval history of 2-D designs with 3 metrics each,
        // sprinkling in the non-finite values a real trace contains.
        let specials = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0];
        let mut h = RunHistory::new("opamp2_180nm", "KATO+bank[test]", seed);
        for i in 0..8 {
            let mut vals: Vec<f64> = raw[i * 6..i * 6 + 6].to_vec();
            // picks decides which entries get overwritten with specials.
            let p = picks[i * 2];
            if p < specials.len() {
                vals[p % 6] = specials[p];
            }
            let feasible = picks[i * 2 + 1] % 2 == 0;
            let score = if feasible { vals[0] } else { f64::NEG_INFINITY };
            h.evals.push(EvalRecord {
                x: vals[..2].iter().map(|v| v.abs() % 1.0).collect(),
                metrics: Metrics::new(vals[2..5].to_vec()),
                feasible,
                score,
            });
        }

        let text = history_to_json(&h).to_string();
        let back = history_from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(&back.problem, &h.problem);
        prop_assert_eq!(&back.method, &h.method);
        prop_assert_eq!(back.seed, h.seed);
        prop_assert_eq!(back.evals.len(), h.evals.len());
        for (a, b) in back.evals.iter().zip(&h.evals) {
            prop_assert_eq!(a.feasible, b.feasible);
            prop_assert!(same_num(a.score, b.score), "{} vs {}", a.score, b.score);
            for (&va, &vb) in a.x.iter().zip(&b.x) {
                prop_assert!(same_num(va, vb));
            }
            for (&va, &vb) in a.metrics.values().iter().zip(b.metrics.values()) {
                prop_assert!(same_num(va, vb), "{va} vs {vb}");
            }
        }
    }
}

#[test]
fn bank_file_roundtrip_survives_a_fresh_process_view() {
    // Same property, but through the actual files: append a real (short)
    // run, reopen the bank from disk, and compare traces exactly.
    let dir = tmp_bank_dir("reload");
    let problem = TwoStageOpAmp::new(TechNode::n180());
    let mut h = RunHistory::new(&problem.name(), "KATO", 17);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(17);
    for _ in 0..6 {
        let x = kato_circuits::random_design(problem.dim(), &mut rng);
        h.evaluate_and_push(&problem, &Mode::Constrained, x);
    }
    {
        let mut bank = Bank::open(&dir).unwrap();
        bank.append("opamp2", "180nm", &h).unwrap();
    }
    let bank = Bank::open(&dir).unwrap();
    let runs = bank.runs("opamp2", "180nm").unwrap();
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].evals.len(), h.evals.len());
    for (a, b) in runs[0].evals.iter().zip(&h.evals) {
        assert_eq!(a.x, b.x);
        assert_eq!(a.feasible, b.feasible);
        assert!(same_num(a.score, b.score));
        for (&va, &vb) in a.metrics.values().iter().zip(b.metrics.values()) {
            assert!(same_num(va, vb));
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn warm_start_from_the_bank_beats_cold_start_180_to_40nm() {
    // The acceptance scenario: persist one completed opamp2@180nm run,
    // then size opamp2@40nm once cold and once through the bank with the
    // same seed/budget. The warm run must attach the 180 nm archive as its
    // transfer source and reach a feasible point in strictly fewer
    // simulator evaluations. Fully seeded → deterministic.
    let dir = tmp_bank_dir("warm_vs_cold");
    let seed = 11;
    let settings = request_settings(40, seed);

    // Stage 1: a completed 180 nm run goes into the bank.
    let src_problem = TwoStageOpAmp::new(TechNode::n180());
    let (src_run, src_warm) = run_with_bank(
        None,
        "opamp2",
        "180nm",
        &src_problem,
        settings.clone(),
        None,
    );
    assert!(src_warm.is_none());
    assert_eq!(src_run.len(), 40);
    let mut bank = Bank::open(&dir).unwrap();
    bank.append("opamp2", "180nm", &src_run).unwrap();

    // Stage 2: the 40 nm request, cold vs through the bank.
    let target = TwoStageOpAmp::new(TechNode::n40());
    let (cold, none) = run_with_bank(None, "opamp2", "40nm", &target, settings.clone(), None);
    assert!(none.is_none());
    let (warm, choice) = run_with_bank(Some(&bank), "opamp2", "40nm", &target, settings, None);
    let choice = choice.expect("bank must supply a warm-start source");
    assert_eq!(choice.label, "opamp2_180nm");
    assert_eq!(choice.tech, "180nm");
    assert!(!choice.same_tech);
    assert!(
        warm.method.contains("bank[opamp2_180nm]"),
        "{}",
        warm.method
    );

    // Both spend the same budget; the warm start gets feasible sooner.
    assert_eq!(cold.len(), warm.len());
    let cold_sims = sims_to_feasible(&cold);
    let warm_sims = sims_to_feasible(&warm).expect("warm run must reach feasibility");
    match cold_sims {
        None => {} // cold never feasible: warm wins by definition
        Some(c) => assert!(
            warm_sims < c,
            "warm start must beat cold: warm {warm_sims} vs cold {c}"
        ),
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn daemon_caches_hits_and_warm_starts_new_tech_from_the_bank() {
    // The daemon-level view of the same story, exercising the full
    // request→response path: identical requests dedupe through the cache,
    // and a request on a new tech node warm-starts from the persisted run.
    let dir = tmp_bank_dir("daemon");
    let mut daemon = Daemon::new().with_bank(Bank::open(&dir).unwrap());

    let r1 =
        daemon.handle_line(r#"{"id":"a","scenario":"opamp2","tech":"180nm","budget":18,"seed":7}"#);
    let d1 = Json::parse(&r1).unwrap();
    assert_eq!(d1.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(d1.get("cache_hit").unwrap().as_bool(), Some(false));
    // First request on an empty bank runs cold.
    assert!(d1.get("warm_start").unwrap().is_null());

    let r2 =
        daemon.handle_line(r#"{"id":"b","scenario":"opamp2","tech":"180nm","budget":18,"seed":7}"#);
    let d2 = Json::parse(&r2).unwrap();
    assert_eq!(d2.get("cache_hit").unwrap().as_bool(), Some(true));
    assert_eq!(
        d1.get("best").unwrap().to_string(),
        d2.get("best").unwrap().to_string()
    );

    let r3 =
        daemon.handle_line(r#"{"id":"c","scenario":"opamp2","tech":"40nm","budget":18,"seed":7}"#);
    let d3 = Json::parse(&r3).unwrap();
    assert_eq!(d3.get("cache_hit").unwrap().as_bool(), Some(false));
    let warm = d3.get("warm_start").unwrap();
    assert!(!warm.is_null(), "40nm request must warm-start: {r3}");
    assert_eq!(warm.get("source").unwrap().as_str(), Some("opamp2_180nm"));
    assert_eq!(warm.get("same_tech").unwrap().as_bool(), Some(false));

    // The bank on disk now holds both runs, reloadable by a fresh process.
    let bank = Bank::open(&dir).unwrap();
    assert_eq!(bank.runs("opamp2", "180nm").unwrap().len(), 1);
    assert_eq!(bank.runs("opamp2", "40nm").unwrap().len(), 1);
    fs::remove_dir_all(&dir).unwrap();
}
