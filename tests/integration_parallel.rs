//! Integration: the parallel runtime's determinism guarantee and batched
//! inference consistency, end to end through `Kato::run`.
//!
//! `kato_par` re-reads `KATO_THREADS` on every call, and all fan-outs in
//! the optimizer stack are order-preserving with per-work-item seeding, so
//! a seeded run must produce a bitwise-identical `RunHistory` no matter how
//! many worker threads are used. This is the property CI gates by running
//! the suite under both `KATO_THREADS=1` and `KATO_THREADS=4`.

use kato::{BoSettings, Kato, Mode, RunHistory, SourceData};
use kato_circuits::{Goal, Metrics, SizingProblem, Spec, SpecKind, VarSpec};

/// 2-D constrained toy: cheap enough to run the full loop many times.
struct Toy {
    vars: Vec<VarSpec>,
    specs: Vec<Spec>,
}

impl Toy {
    fn new() -> Self {
        Toy {
            vars: vec![VarSpec::lin("a", 0.0, 1.0), VarSpec::lin("b", 0.0, 1.0)],
            specs: vec![
                Spec {
                    metric: 0,
                    kind: SpecKind::Objective(Goal::Maximize),
                },
                Spec {
                    metric: 1,
                    kind: SpecKind::GreaterEq(0.4),
                },
            ],
        }
    }
}

impl SizingProblem for Toy {
    fn name(&self) -> String {
        "toy_parallel".into()
    }
    fn variables(&self) -> &[VarSpec] {
        &self.vars
    }
    fn metric_names(&self) -> &[&'static str] {
        &["obj", "con"]
    }
    fn specs(&self) -> &[Spec] {
        &self.specs
    }
    fn evaluate(&self, x: &[f64]) -> Metrics {
        let obj = 1.0 - (x[0] - 0.7).powi(2) - (x[1] - 0.3).powi(2);
        Metrics::new(vec![obj, x[0]])
    }
    fn expert_design(&self) -> Vec<f64> {
        vec![0.7, 0.3]
    }
}

/// Serialises the tests that mutate `KATO_THREADS` (tests in one binary run
/// concurrently and the variable is process-global).
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn assert_histories_identical(a: &RunHistory, b: &RunHistory) {
    assert_eq!(a.len(), b.len(), "trace lengths differ");
    for (i, (ea, eb)) in a.evals.iter().zip(&b.evals).enumerate() {
        assert_eq!(ea.x, eb.x, "design {i} differs");
        assert_eq!(
            ea.metrics.values(),
            eb.metrics.values(),
            "metrics {i} differ"
        );
        assert_eq!(ea.feasible, eb.feasible, "feasibility {i} differs");
        assert!(
            ea.score == eb.score
                || (ea.score == f64::NEG_INFINITY && eb.score == f64::NEG_INFINITY),
            "score {i} differs: {} vs {}",
            ea.score,
            eb.score
        );
    }
}

#[test]
fn run_history_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let toy = Toy::new();
    let run = || Kato::new(BoSettings::quick(26, 19)).run(&toy, Mode::Constrained);

    std::env::set_var("KATO_THREADS", "1");
    let serial = run();
    std::env::set_var("KATO_THREADS", "4");
    let parallel = run();
    std::env::remove_var("KATO_THREADS");

    assert_eq!(serial.len(), 26);
    assert_histories_identical(&serial, &parallel);
}

#[test]
fn incremental_refit_run_identical_across_thread_counts() {
    // Per-iteration model updates now go through the incremental path
    // (`update_incremental` → `Gp::append` / `KatGp::append`): frozen
    // scalers, rank-k Cholesky extension and a warm-start likelihood check
    // that sometimes skips retraining entirely. A longer run maximises the
    // number of appends taken, so this gate proves the incremental path —
    // including its refit fallbacks — is bitwise thread-count-invariant.
    let _guard = ENV_LOCK.lock().unwrap();
    let toy = Toy::new();
    let run = || Kato::new(BoSettings::quick(32, 11)).run(&toy, Mode::Constrained);

    std::env::set_var("KATO_THREADS", "1");
    let serial = run();
    std::env::set_var("KATO_THREADS", "4");
    let parallel = run();
    std::env::remove_var("KATO_THREADS");

    assert_eq!(serial.len(), 32);
    assert_histories_identical(&serial, &parallel);
}

#[test]
fn transfer_run_identical_across_thread_counts() {
    // The transfer stack adds parallel KAT-GP restarts and the concurrent
    // P1/P2 proposal fan-out; it must be thread-count-invariant too.
    let _guard = ENV_LOCK.lock().unwrap();
    let toy = Toy::new();
    let run = || {
        let source = SourceData::from_problem_random(&toy, 30, 3);
        Kato::new(BoSettings::quick(22, 7))
            .with_source(source)
            .run(&toy, Mode::Constrained)
    };

    std::env::set_var("KATO_THREADS", "1");
    let serial = run();
    std::env::set_var("KATO_THREADS", "4");
    let parallel = run();
    std::env::remove_var("KATO_THREADS");

    assert_eq!(serial.len(), 22);
    assert_histories_identical(&serial, &parallel);
}
