//! Integration: Monte-Carlo mismatch sampling is deterministic and
//! statistically faithful to the Pelgrom area law.
//!
//! Two properties gate here:
//!
//! 1. **Determinism** — the perturbed tech card is a pure function of
//!    `(seed, candidate design vector, sample index)`: rebuilt streams
//!    give bitwise-identical device queries, interleaving queries to other
//!    devices or candidates changes nothing, and the yield pipeline
//!    produces bitwise-identical metrics at any `KATO_THREADS` and any
//!    population position (proptest + explicit thread sweep).
//! 2. **Statistics** — over 10k draws, the sample σ of ΔVth matches
//!    `A_vth/√(WL)` within 5%, and doubling the gate area halves the
//!    variance (the defining Pelgrom scaling).

use kato::evaluate_batch_sharded;
use kato_circuits::{
    Metrics, MismatchStream, Pelgrom, ScenarioRegistry, SizingProblem, TechNode, YieldSettings,
};
use proptest::prelude::*;

/// Serialises tests that mutate `KATO_THREADS` (process-global; tests in
/// one binary run concurrently).
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

const PELGROM: Pelgrom = Pelgrom {
    a_vth: 5e-9,
    a_kp: 1e-8,
};

proptest! {
    /// Same (seed, candidate, sample) → bitwise-identical perturbed card,
    /// no matter how the stream is rebuilt or what was queried in between.
    #[test]
    fn perturbed_card_is_a_pure_function_of_seed_candidate_sample(
        seed in 0u64..u64::MAX,
        x in proptest::collection::vec(0.0f64..1.0, 1..8),
        sample in 0u64..64,
        w_um in 0.5f64..50.0,
        l_um in 0.18f64..5.0,
        vgs in 0.4f64..1.6,
        vds in 0.2f64..1.6,
    ) {
        let (w, l) = (w_um * 1e-6, l_um * 1e-6);
        let card_a = TechNode::n180()
            .with_mismatch(MismatchStream::for_candidate(seed, &x, sample));
        let card_b = TechNode::n180()
            .with_mismatch(MismatchStream::for_candidate(seed, &x, sample));

        // Bitwise-equal I-V triples from independently rebuilt cards.
        let iv_a = card_a.mos_iv(&card_a.nmos, w, l, vgs, vds);
        prop_assert_eq!(iv_a, card_b.mos_iv(&card_b.nmos, w, l, vgs, vds));

        // Interleave queries to the complementary device, another geometry
        // and another candidate's card — then re-query: still identical.
        let other = TechNode::n180()
            .with_mismatch(MismatchStream::for_candidate(seed ^ 1, &x, sample));
        let _ = card_a.mos_iv(&card_a.pmos, w, l, -vgs, -vds);
        let _ = card_a.mos_iv(&card_a.nmos, 2.0 * w, l, vgs, vds);
        let _ = other.mos_iv(&other.nmos, w, l, vgs, vds);
        prop_assert_eq!(iv_a, card_a.mos_iv(&card_a.nmos, w, l, vgs, vds));

        // A different sample index of the same candidate is a different
        // card (with overwhelming probability over random seeds).
        let shifted = TechNode::n180()
            .with_mismatch(MismatchStream::for_candidate(seed, &x, sample + 1));
        let d_here = card_a.local_deltas(&card_a.nmos, w, l);
        let d_next = shifted.local_deltas(&shifted.nmos, w, l);
        prop_assert!(d_here != d_next, "samples {} and {} collided", sample, sample + 1);

        // The operating-point inversion sees the same perturbed device as
        // the forward evaluation: round-trip through vgs_for_id.
        let (id, _, _) = iv_a;
        if id > 1e-12 {
            let vgs_back = card_a.vgs_for_id(&card_a.nmos, w, l, vds, id);
            let (id_back, _, _) = card_a.mos_iv(&card_a.nmos, w, l, vgs_back, vds);
            prop_assert!(
                (id_back - id).abs() <= 1e-6 * id.abs() + 1e-15,
                "round-trip drifted: {} vs {}", id_back, id
            );
        }
    }
}

#[test]
fn yield_metrics_identical_across_thread_counts_and_population_order() {
    let _guard = ENV_LOCK.lock().unwrap();
    let reg = ScenarioRegistry::standard();
    let scenario = reg.get("opamp2").unwrap();
    let problem = scenario
        .build_yield(
            "180nm",
            None,
            YieldSettings {
                samples: 6,
                threshold: 0.5,
                seed: 23,
                ..YieldSettings::default()
            },
        )
        .unwrap();
    let xs: Vec<Vec<f64>> = (0..8)
        .map(|i| {
            (0..problem.dim())
                .map(|j| ((i * 37 + j * 11) % 100) as f64 / 100.0)
                .collect()
        })
        .chain([problem.expert_design()])
        .collect();

    // Reference: scalar loop, no pool involvement at all.
    std::env::remove_var("KATO_THREADS");
    let reference: Vec<Metrics> = xs.iter().map(|x| problem.evaluate(x)).collect();

    for threads in ["1", "4"] {
        std::env::set_var("KATO_THREADS", threads);
        let batched = evaluate_batch_sharded(&problem, &xs);
        assert_eq!(batched, reference, "KATO_THREADS={threads}");
        // Reversed population: each candidate's metrics must not depend on
        // its neighbours or its position.
        let rev: Vec<Vec<f64>> = xs.iter().rev().cloned().collect();
        let batched_rev = evaluate_batch_sharded(&problem, &rev);
        let unrev: Vec<Metrics> = batched_rev.into_iter().rev().collect();
        assert_eq!(unrev, reference);
    }
    std::env::remove_var("KATO_THREADS");
}

#[test]
fn sigma_of_10k_draws_matches_the_area_law_within_5_percent() {
    let stream = MismatchStream::from_key(0xC0FF_EE00_1234_5678);
    let n = 10_000u64;
    let draws = |w: f64, l: f64| -> Vec<f64> {
        (0..n)
            .map(|d| stream.deltas(d, w, l, &PELGROM).dvth)
            .collect()
    };
    let var = |v: &[f64]| -> f64 {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (v.len() - 1) as f64
    };

    // 1 µm × 1 µm at A_vth = 5 mV·µm ⇒ σ = 5 mV.
    let (w, l) = (1e-6, 1e-6);
    let expected = PELGROM.sigma_vth(w, l);
    let sample_sigma = var(&draws(w, l)).sqrt();
    let rel = (sample_sigma - expected).abs() / expected;
    assert!(
        rel < 0.05,
        "sample σ {sample_sigma:.6e} vs Pelgrom {expected:.6e} ({:.1}% off)",
        100.0 * rel
    );

    // Doubling W·L halves the variance: σ² ∝ 1/(WL).
    let var_1x = var(&draws(w, l));
    let var_2x = var(&draws(2.0 * w, l));
    let ratio = var_2x / var_1x;
    assert!(
        (ratio - 0.5).abs() < 0.05,
        "variance ratio at 2x area was {ratio:.4}, expected 0.5"
    );

    // And the KP component follows the same law.
    let kp_rel = |w: f64, l: f64| -> Vec<f64> {
        (0..n)
            .map(|d| stream.deltas(d, w, l, &PELGROM).kp_ratio - 1.0)
            .collect()
    };
    let kp_sigma = var(&kp_rel(w, l)).sqrt();
    let kp_expected = PELGROM.sigma_kp_rel(w, l);
    let kp_err = (kp_sigma - kp_expected).abs() / kp_expected;
    assert!(kp_err < 0.05, "KP σ off by {:.1}%", 100.0 * kp_err);
}

#[test]
fn mismatch_draws_are_uncorrelated_across_devices() {
    // Box–Muller pairs land on different devices, so cross-device
    // correlation of ΔVth must vanish at scale — the independence the
    // yield estimator's pass/fail counting assumes.
    let stream = MismatchStream::from_key(99);
    let n = 10_000u64;
    let (w, l) = (1e-6, 1e-6);
    let a: Vec<f64> = (0..n)
        .map(|d| stream.deltas(2 * d, w, l, &PELGROM).dvth)
        .collect();
    let b: Vec<f64> = (0..n)
        .map(|d| stream.deltas(2 * d + 1, w, l, &PELGROM).dvth)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (ma, mb) = (mean(&a), mean(&b));
    let cov = a
        .iter()
        .zip(&b)
        .map(|(x, y)| (x - ma) * (y - mb))
        .sum::<f64>()
        / (n - 1) as f64;
    let sigma2 = PELGROM.sigma_vth(w, l).powi(2);
    assert!(
        (cov / sigma2).abs() < 0.05,
        "normalised cross-device covariance {:.4}",
        cov / sigma2
    );
}
