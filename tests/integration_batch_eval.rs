//! Integration: the batched-evaluation contract, end to end.
//!
//! `SizingProblem::evaluate_batch` is contractually bitwise-identical to
//! the scalar `evaluate` loop, and `kato::evaluate_batch_sharded` must
//! preserve that identity at any thread count because `kato_par` splits
//! populations into order-preserving contiguous chunks. This gate proves
//! both properties for every registry scenario on its default backend —
//! including the LUT-native `switch` / `varactor` families — and for the
//! all-corner `WorstCaseProblem` wrapper, under `KATO_THREADS=1` and `=4`.

use kato::{evaluate_batch_sharded, WorstCaseProblem};
use kato_circuits::{random_design, Metrics, ScenarioRegistry, SizingProblem};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Serialises the tests that mutate `KATO_THREADS` (tests in one binary
/// run concurrently and the variable is process-global).
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn designs_for(p: &dyn SizingProblem, n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| random_design(p.dim(), &mut rng)).collect()
}

fn assert_bitwise(got: &[Metrics], want: &[Metrics], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: population size");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.values(), w.values(), "{ctx}: design {i} diverged");
    }
}

/// Scalar loop vs trait batch vs sharded batch, for one problem.
fn check_problem(p: &dyn SizingProblem, n: usize, seed: u64, ctx: &str) {
    let xs = designs_for(p, n, seed);
    let scalar: Vec<Metrics> = xs.iter().map(|x| p.evaluate(x)).collect();
    assert_bitwise(&p.evaluate_batch(&xs), &scalar, &format!("{ctx} batch"));
    for threads in ["1", "4"] {
        std::env::set_var("KATO_THREADS", threads);
        let sharded = evaluate_batch_sharded(p, &xs);
        assert_bitwise(&sharded, &scalar, &format!("{ctx} sharded x{threads}"));
    }
    std::env::remove_var("KATO_THREADS");
}

#[test]
fn batch_eval_bitwise_identical_for_every_scenario() {
    let _guard = ENV_LOCK.lock().unwrap();
    let reg = ScenarioRegistry::standard();
    for (i, scenario) in reg.scenarios().iter().enumerate() {
        let p = scenario.build_default();
        check_problem(p.as_ref(), 9, 0x5eed + i as u64, scenario.name);
    }
}

#[test]
fn worst_case_batch_bitwise_identical_for_every_scenario() {
    let _guard = ENV_LOCK.lock().unwrap();
    let reg = ScenarioRegistry::standard();
    for (i, scenario) in reg.scenarios().iter().enumerate() {
        let wc = WorstCaseProblem::new(scenario, scenario.default_tech).unwrap();
        let ctx = format!("{} worst-case", scenario.name);
        check_problem(&wc, 5, 0xc0de + i as u64, &ctx);
    }
}
