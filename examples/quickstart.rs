//! Quickstart: size a two-stage op-amp with KATO in under a minute.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use kato::{BoSettings, Kato, Mode};
use kato_circuits::{SizingProblem, TechNode, TwoStageOpAmp};

fn main() {
    // The paper's first benchmark: Miller two-stage OTA at 180 nm.
    // Spec (Eq. 15-like): minimise I_total s.t. gain/PM/GBW bounds.
    let problem = TwoStageOpAmp::new(TechNode::n180());
    println!(
        "problem: {} ({} design variables)",
        problem.name(),
        problem.dim()
    );

    // KATO = NeukGP + modified constrained MACE (no transfer here).
    let settings = BoSettings::quick(60, 42);
    let history = Kato::new(settings).run(&problem, Mode::Constrained);

    match history.best() {
        Some(best) => {
            println!("\nbest design after {} simulations:", history.len());
            for (name, value) in problem.physical(&best.x) {
                println!("  {name:<10} = {value:.4e}");
            }
            println!("metrics ({:?}):", problem.metric_names());
            println!("  {}", best.metrics);
            println!("feasible: {}", best.feasible);
        }
        None => println!("no feasible design found - try a larger budget"),
    }

    // Compare against the built-in expert reference design.
    let expert = problem.evaluate(&problem.expert_design());
    println!("\nhuman-expert reference: {expert}");
}
