//! Quickstart: size a two-stage op-amp with KATO in under a minute.
//!
//! The optimizer runs the parallel batched engine by default: NSGA-II
//! scores whole candidate populations through one batched GP posterior
//! per metric, and per-metric fits/refits fan out over the `kato_par`
//! pool. Set `KATO_THREADS` to control the worker count (`KATO_THREADS=1`
//! forces serial execution; the trace is bitwise-identical either way).
//!
//! ```bash
//! cargo run --release --example quickstart
//! KATO_THREADS=4 cargo run --release --example quickstart   # same trace
//! ```
//!
//! For the registry/CLI route to the same run, see
//! `kato run opamp2` (ARCHITECTURE.md).

use kato::{BoSettings, Kato, Mode};
use kato_circuits::{SizingProblem, TechNode, TwoStageOpAmp};

fn main() {
    // The paper's first benchmark: Miller two-stage OTA at 180 nm.
    // Spec (Eq. 15-like): minimise I_total s.t. gain/PM/GBW bounds.
    let problem = TwoStageOpAmp::new(TechNode::n180());
    println!(
        "problem: {} ({} design variables)",
        problem.name(),
        problem.dim()
    );

    // KATO = NeukGP + modified constrained MACE (no transfer here).
    let settings = BoSettings::quick(60, 42);
    let history = Kato::new(settings).run(&problem, Mode::Constrained);

    match history.best() {
        Some(best) => {
            println!("\nbest design after {} simulations:", history.len());
            for (name, value) in problem.physical(&best.x) {
                println!("  {name:<10} = {value:.4e}");
            }
            println!("metrics ({:?}):", problem.metric_names());
            println!("  {}", best.metrics);
            println!("feasible: {}", best.feasible);
        }
        None => println!("no feasible design found - try a larger budget"),
    }

    // Compare against the built-in expert reference design.
    let expert = problem.evaluate(&problem.expert_design());
    println!("\nhuman-expert reference: {expert}");
}
