//! Bandgap temperature-coefficient optimisation - the paper's third
//! benchmark (Eq. 17), exercising the full nonlinear DC solver with
//! temperature sweeps rather than a small-signal macromodel.
//!
//! Each simulation is a 12-point Newton DC temperature sweep plus an AC
//! PSRR solve, so the surrogate side stays cheap by comparison; the
//! batched posterior and `KATO_THREADS`-wide parallel refits still apply
//! to the optimizer loop around it.
//!
//! ```bash
//! cargo run --release --example bandgap_tc
//! ```

use kato::{BoSettings, Kato, Mode};
use kato_circuits::{Bandgap, SizingProblem, TechNode};

fn main() {
    let problem = Bandgap::new(TechNode::n180());
    println!("bandgap reference at 180 nm: minimise TC s.t. I_total < 6 uA, PSRR > 50 dB\n");

    let mut s = BoSettings::quick(60, 9);
    s.n_init = 25;
    let history = Kato::new(s).run(&problem, Mode::Constrained);

    match history.best() {
        Some(best) => {
            println!("best design after {} simulations:", history.len());
            for (name, value) in problem.physical(&best.x) {
                println!("  {name:<10} = {value:.4e}");
            }
            println!(
                "\nTC = {:.2} ppm/degC, I = {:.2} uA, PSRR = {:.1} dB",
                best.metrics.get(0),
                best.metrics.get(1),
                best.metrics.get(2)
            );
            // Peek at the DC operating point of the winning design.
            if let Some(dc) = problem.debug_dc(&best.x) {
                println!("dc operating point (27C): {dc}");
            }
        }
        None => println!("no feasible design found - try a larger budget"),
    }

    let expert = problem.evaluate(&problem.expert_design());
    println!("\nhuman-expert reference: {expert}");
}
