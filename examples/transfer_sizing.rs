//! Knowledge transfer across technology nodes: size the 40 nm two-stage
//! op-amp using 180 nm experience - the paper's Fig. 6(a) scenario.
//!
//! With a source attached, each iteration proposes from two surrogates
//! (the target-only Neuk-GP and the source-aligned KAT-GP); the two MACE
//! searches run concurrently on the `kato_par` pool and each scores its
//! NSGA-II populations through the batched GP posterior. `KATO_THREADS`
//! sets the worker count without changing the trace.
//!
//! ```bash
//! cargo run --release --example transfer_sizing
//! ```
//!
//! The CLI equivalent (any registered source/target pair):
//! `kato transfer opamp2 folded_cascode`.

use kato::{BoSettings, Kato, Mode, SourceData};
use kato_circuits::{SizingProblem, TechNode, TwoStageOpAmp};

fn main() {
    let source_problem = TwoStageOpAmp::new(TechNode::n180());
    let target_problem = TwoStageOpAmp::new(TechNode::n40());
    println!(
        "transfer: {} (source) -> {} (target)\n",
        source_problem.name(),
        target_problem.name()
    );

    // 120 random source simulations form the knowledge bank (paper: 200).
    let source = SourceData::from_problem_random(&source_problem, 120, 7);

    let mut s = BoSettings::quick(70, 3);
    s.n_init = 25;

    let plain = Kato::new(s.clone()).run(&target_problem, Mode::Constrained);
    let transfer = Kato::new(s)
        .with_source(source)
        .run(&target_problem, Mode::Constrained);

    for h in [&plain, &transfer] {
        match h.best() {
            Some(b) => println!(
                "{:<28} best I = {:6.1} uA  (gain {:5.1} dB, PM {:5.1} deg, GBW {:6.1} MHz)",
                h.method,
                b.metrics.get(0),
                b.metrics.get(1),
                b.metrics.get(2),
                b.metrics.get(3),
            ),
            None => println!("{:<28} found no feasible design", h.method),
        }
    }

    // Simulations needed by the transfer run to match the plain run's best.
    if let Some(best_plain) = plain.best() {
        if let Some(n) = transfer.sims_to_reach(best_plain.score) {
            println!(
                "\nKATO+TL matched plain KATO's final best after {n} of {} simulations",
                transfer.len()
            );
        }
    }
}
