//! Head-to-head optimizer comparison on the three-stage op-amp - a small
//! in-terminal version of the paper's Fig. 5(b).
//!
//! Every method here (KATO, MACE, random search) shares the batched
//! surrogate engine: acquisition search scores NSGA-II populations in one
//! batched posterior per metric, and model refits run in parallel on the
//! `kato_par` pool (`KATO_THREADS` workers, deterministic at any count).
//!
//! ```bash
//! cargo run --release --example opamp_sizing
//! ```

use kato::baselines::{MaceOptimizer, RandomSearch};
use kato::{BoSettings, Kato, Mode};
use kato_circuits::{SizingProblem, TechNode, ThreeStageOpAmp};

fn main() {
    let problem = ThreeStageOpAmp::new(TechNode::n180());
    println!(
        "constrained sizing of {} - minimise I_total s.t. gain/PM/GBW\n",
        problem.name()
    );

    let budget = 70;
    let mut results = Vec::new();
    for seed in [1u64, 2] {
        let mut s = BoSettings::quick(budget, seed);
        s.n_init = 25;
        results.push(Kato::new(s.clone()).run(&problem, Mode::Constrained));
        results.push(MaceOptimizer::new(s.clone()).run(&problem, Mode::Constrained));
        results.push(RandomSearch::new(s).run(&problem, Mode::Constrained));
    }

    println!(
        "{:<10}{:>6}{:>14}{:>10}",
        "method", "seed", "best I (uA)", "feasible"
    );
    for h in &results {
        match h.best() {
            Some(b) => println!(
                "{:<10}{:>6}{:>14.1}{:>10}",
                h.method,
                h.seed,
                b.metrics.get(0),
                h.evals.iter().filter(|e| e.feasible).count()
            ),
            None => println!("{:<10}{:>6}{:>14}{:>10}", h.method, h.seed, "-", 0),
        }
    }
    println!("\n(KATO should reach the lowest supply current at equal budget.)");
}
